//! Property tests for the evaluation engine: the index-backed evaluator,
//! the scan-only evaluator and a reference naive join must all agree; view
//! rewritings of a decomposed query must equal direct evaluation; the
//! maintenance deltas must keep views equal to rematerialization.

use proptest::prelude::*;
use rdf_engine::maintain::MaintainedView;
use rdf_engine::{evaluate, evaluate_with, evaluate_with_stats, Engine, EvalOptions};
use rdf_model::{Id, TripleStore};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, Var};

fn triples_strategy() -> impl Strategy<Value = Vec<[u32; 3]>> {
    prop::collection::vec([0u32..10, 20u32..24, 0u32..10], 1..80)
}

/// Random 1–3 atom connected-ish queries over the same vocabulary.
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (
        prop_oneof![(0u32..3).prop_map(Some), Just(None)],
        20u32..24,
        prop_oneof![
            (0u32..3).prop_map(Some),
            Just(None),
            (0u32..10).prop_map(|c| Some(c + 100))
        ],
    );
    prop::collection::vec(atom, 1..3).prop_map(|atoms| {
        let atoms: Vec<Atom> = atoms
            .into_iter()
            .enumerate()
            .map(|(i, (s, p, o))| {
                let s = match s {
                    Some(v) => QTerm::Var(Var(v)),
                    None => QTerm::Var(Var(3 + i as u32)),
                };
                let o = match o {
                    Some(c) if c >= 100 => QTerm::Const(Id(c - 100)),
                    Some(v) => QTerm::Var(Var(v)),
                    None => QTerm::Var(Var(6 + i as u32)),
                };
                Atom([s, QTerm::Const(Id(p)), o])
            })
            .collect();
        let mut head = Vec::new();
        for a in &atoms {
            for v in a.vars() {
                if !head.contains(&QTerm::Var(v)) {
                    head.push(QTerm::Var(v));
                }
            }
        }
        ConjunctiveQuery::new(head, atoms)
    })
}

fn store_from(triples: &[[u32; 3]]) -> TripleStore {
    let mut store = TripleStore::new();
    for t in triples {
        store.insert([Id(t[0]), Id(t[1]), Id(t[2])]);
    }
    store
}

/// Wraps atoms into a query whose head lists every body variable once.
fn cq(atoms: Vec<Atom>) -> ConjunctiveQuery {
    let mut head = Vec::new();
    for a in &atoms {
        for v in a.vars() {
            if !head.contains(&QTerm::Var(v)) {
                head.push(QTerm::Var(v));
            }
        }
    }
    ConjunctiveQuery::new(head, atoms)
}

/// Shaped queries that stress specific join-core paths: stars (one shared
/// variable fanning out), chains (variable handoff atom to atom), repeated
/// variables within an atom, constant selections, and cartesian products
/// (disconnected atoms). Together with [`query_strategy`] these drive the
/// differential test of the compiled core against the scan baseline.
fn shaped_query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let var = |v: u32| QTerm::Var(Var(v));
    let star = (
        prop::collection::vec(20u32..24, 1..4),
        prop::collection::vec(prop_oneof![Just(None), (0u32..10).prop_map(Some)], 1..4),
    )
        .prop_map(move |(preds, leaves)| {
            // t(X, p_i, L_i): shared subject X, leaf either fresh var or
            // constant.
            let atoms = preds
                .iter()
                .zip(leaves.iter().cycle())
                .enumerate()
                .map(|(i, (&p, leaf))| {
                    let o = match leaf {
                        Some(c) => QTerm::Const(Id(*c)),
                        None => var(1 + i as u32),
                    };
                    Atom([var(0), QTerm::Const(Id(p)), o])
                })
                .collect();
            cq(atoms)
        });
    let chain = (
        prop::collection::vec(20u32..24, 1..4),
        prop_oneof![Just(None), (0u32..10).prop_map(Some)],
    )
        .prop_map(move |(preds, start)| {
            // t(X_i, p_i, X_{i+1}), optionally anchored by a constant
            // subject.
            let atoms = preds
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let s = match (i, start) {
                        (0, Some(c)) => QTerm::Const(Id(c)),
                        _ => var(i as u32),
                    };
                    Atom([s, QTerm::Const(Id(p)), var(1 + i as u32)])
                })
                .collect();
            cq(atoms)
        });
    let repeated = (20u32..24, 20u32..24, any::<bool>()).prop_map(move |(p1, p2, extra)| {
        // t(X, p1, X) exercises the intra-atom Check action; the optional
        // second atom re-joins X across atoms.
        let mut atoms = vec![Atom([var(0), QTerm::Const(Id(p1)), var(0)])];
        if extra {
            atoms.push(Atom([var(0), QTerm::Const(Id(p2)), var(1)]));
        }
        cq(atoms)
    });
    let cartesian = (20u32..24, 20u32..24).prop_map(move |(p1, p2)| {
        // Two atoms sharing no variable: a pure product.
        cq(vec![
            Atom([var(0), QTerm::Const(Id(p1)), var(1)]),
            Atom([var(2), QTerm::Const(Id(p2)), var(3)]),
        ])
    });
    prop_oneof![
        star,
        chain,
        repeated,
        cartesian,
        cyclic_query_strategy(),
        query_strategy()
    ]
}

/// Cyclic shapes — triangle, diamond, 4-cycle — the queries the adaptive
/// selector hands to the leapfrog engine. The triangle variant sometimes
/// anchors its shared corner with a constant, which *breaks* the cycle
/// (GYO removes the two then-subsumed edge atoms), so the differential
/// harness covers the selector's boundary from both sides.
fn cyclic_query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let var = |v: u32| QTerm::Var(Var(v));
    let triangle = (
        prop::collection::vec(20u32..24, 3),
        prop_oneof![Just(None), (0u32..10).prop_map(Some)],
    )
        .prop_map(move |(p, anchor)| {
            let x = match anchor {
                Some(c) => QTerm::Const(Id(c)),
                None => var(0),
            };
            cq(vec![
                Atom([x, QTerm::Const(Id(p[0])), var(1)]),
                Atom([var(1), QTerm::Const(Id(p[1])), var(2)]),
                Atom([x, QTerm::Const(Id(p[2])), var(2)]),
            ])
        });
    let diamond = prop::collection::vec(20u32..24, 4).prop_map(move |p| {
        cq(vec![
            Atom([var(0), QTerm::Const(Id(p[0])), var(1)]),
            Atom([var(0), QTerm::Const(Id(p[1])), var(2)]),
            Atom([var(1), QTerm::Const(Id(p[2])), var(3)]),
            Atom([var(2), QTerm::Const(Id(p[3])), var(3)]),
        ])
    });
    let four_cycle = prop::collection::vec(20u32..24, 4).prop_map(move |p| {
        cq(vec![
            Atom([var(0), QTerm::Const(Id(p[0])), var(1)]),
            Atom([var(1), QTerm::Const(Id(p[1])), var(2)]),
            Atom([var(2), QTerm::Const(Id(p[2])), var(3)]),
            Atom([var(3), QTerm::Const(Id(p[3])), var(0)]),
        ])
    });
    prop_oneof![triangle, diamond, four_cycle]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn indexed_and_scan_only_agree(
        triples in triples_strategy(),
        q in query_strategy(),
    ) {
        let store = store_from(&triples);
        let a = evaluate(&store, &q);
        let b = evaluate_with(&store, &q, &EvalOptions::scan_baseline());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn compiled_core_matches_baselines_on_shaped_queries(
        triples in triples_strategy(),
        q in shaped_query_strategy(),
    ) {
        // Differential test across all four engines: the full-scan
        // baseline, the pre-compiled indexed core, the compiled
        // index-native core and the leapfrog triejoin (forced, so it also
        // runs the acyclic shapes the selector would route elsewhere).
        // Shapes cover stars, chains, repeated variables, constant
        // selections, cartesian products and the cyclic tier (triangles,
        // diamonds, 4-cycles). The adaptive default must agree too,
        // whichever engine it picked.
        let store = store_from(&triples);
        let scan = evaluate_with(&store, &q, &EvalOptions::scan_baseline());
        let legacy = evaluate_with(&store, &q, &EvalOptions::legacy_indexed());
        let compiled = evaluate_with(&store, &q, &EvalOptions::compiled());
        let wcoj = evaluate_with(&store, &q, &EvalOptions::wcoj());
        let (auto, _) = evaluate_with_stats(&store, &q, &EvalOptions::default());
        prop_assert_eq!(&compiled, &scan);
        prop_assert_eq!(&compiled, &legacy);
        prop_assert_eq!(&compiled, &wcoj);
        prop_assert_eq!(&compiled, &auto);
    }

    #[test]
    fn maintenance_equals_rematerialization(
        base in triples_strategy(),
        feed in prop::collection::vec([0u32..10, 20u32..24, 0u32..10], 1..20),
        q in query_strategy(),
    ) {
        let mut store = store_from(&base);
        let mut view = MaintainedView::new(&store, q.clone());
        for t in feed {
            let t = [Id(t[0]), Id(t[1]), Id(t[2])];
            if store.insert(t) {
                view.apply_insert(&store, t);
            }
        }
        let fresh = evaluate(&store, &q);
        prop_assert_eq!(view.to_answers(), fresh);
    }

    #[test]
    fn batched_maintenance_equals_rematerialization(
        base in triples_strategy(),
        batches in prop::collection::vec(
            (any::<bool>(), prop::collection::vec([0u32..10, 20u32..24, 0u32..10], 1..12)),
            1..8,
        ),
        q in query_strategy(),
    ) {
        // Random interleaved insert/delete batches through the
        // set-at-a-time delta joins: after every batch the maintained view
        // must equal a from-scratch rematerialization.
        let mut store = store_from(&base);
        let mut view = MaintainedView::new(&store, q.clone());
        for (is_delete, raw) in batches {
            let batch: Vec<[Id; 3]> = raw
                .into_iter()
                .map(|t| [Id(t[0]), Id(t[1]), Id(t[2])])
                .collect();
            if is_delete {
                // Prepare while the doomed triples are still stored (the
                // batch may contain absent triples; they are harmless).
                let delta = view.prepare_delete_batch(&store, &batch);
                store.remove_batch(&batch);
                view.commit_delete_batch(&store, &delta);
            } else {
                let added = store.insert_batch(&batch);
                view.apply_insert_batch(&store, &added);
            }
            prop_assert_eq!(view.to_answers(), evaluate(&store, &q));
        }
    }

    #[test]
    fn batched_and_per_triple_maintenance_agree(
        base in triples_strategy(),
        feed in prop::collection::vec([0u32..10, 20u32..24, 0u32..10], 1..20),
        q in query_strategy(),
    ) {
        // One delta-set join pass must produce the same view as per-triple
        // application, with no more delta tuples.
        let feed: Vec<[Id; 3]> = feed
            .into_iter()
            .map(|t| [Id(t[0]), Id(t[1]), Id(t[2])])
            .collect();

        let mut batched_store = store_from(&base);
        let mut batched = MaintainedView::new(&batched_store, q.clone());
        let added = batched_store.insert_batch(&feed);
        let bstats = batched.apply_insert_batch(&batched_store, &added);

        let mut seq_store = store_from(&base);
        let mut seq = MaintainedView::new(&seq_store, q.clone());
        let mut pstats = rdf_engine::MaintenanceStats::default();
        for &t in &feed {
            if seq_store.insert(t) {
                pstats.merge(seq.apply_insert(&seq_store, t));
            }
        }
        prop_assert_eq!(batched.to_answers(), seq.to_answers());
        prop_assert_eq!(bstats.added, pstats.added);
        prop_assert!(
            bstats.delta_tuples <= pstats.delta_tuples,
            "batched {} vs per-triple {}",
            bstats.delta_tuples,
            pstats.delta_tuples
        );
        prop_assert_eq!(batched.to_answers(), evaluate(&batched_store, &q));
    }

    #[test]
    fn answers_satisfy_the_query(
        triples in triples_strategy(),
        q in query_strategy(),
    ) {
        // Soundness spot-check: substituting each answer into the head and
        // re-evaluating the fully-bound query must succeed.
        let store = store_from(&triples);
        let answers = evaluate(&store, &q);
        for tuple in answers.tuples().iter().take(5) {
            let mut map = rdf_model::FxHashMap::default();
            for (term, value) in q.head.iter().zip(tuple.iter()) {
                if let QTerm::Var(v) = term {
                    map.insert(*v, QTerm::Const(*value));
                }
            }
            let bound = q.substitute(&map);
            let res = evaluate(&store, &bound);
            prop_assert!(!res.is_empty(), "answer {tuple:?} must satisfy the query");
        }
    }
}

/// Deterministic 64-bit LCG (same constants as Knuth's MMIX), so the
/// stress store is reproducible without a seeded RNG dependency.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Million-triple differential stress test. Ignored by default (it wants
/// release mode); CI runs it explicitly with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "1M-triple stress test: run in release mode with -- --ignored"]
fn million_triple_compiled_matches_baselines() {
    const N: usize = 1_000_000;
    const SUBJECTS: u64 = 100_000;
    const PREDICATES: u64 = 16;
    let mut rng = 0x5eed_u64;
    let mut batch = Vec::with_capacity(N);
    for _ in 0..N {
        let s = Id((lcg(&mut rng) % SUBJECTS) as u32);
        let p = Id(1_000_000 + (lcg(&mut rng) % PREDICATES) as u32);
        let o = Id((lcg(&mut rng) % SUBJECTS) as u32);
        batch.push([s, p, o]);
    }
    let mut store = TripleStore::new();
    store.insert_batch(&batch);
    assert!(store.len() > 990_000, "stress store should be ~1M triples");

    let var = |v: u32| QTerm::Var(Var(v));
    let p0 = QTerm::Const(Id(1_000_000));
    let p1 = QTerm::Const(Id(1_000_001));
    let anchor = QTerm::Const(batch[0][0]);
    // Query shapes chosen so the scan baseline stays tractable: the single
    // atom costs one full scan; the anchored chain/star fan out from a
    // constant subject before their full-scan inner nodes.
    let single = ConjunctiveQuery::new(vec![var(0), var(1)], vec![Atom([var(0), p0, var(1)])]);
    let chain = ConjunctiveQuery::new(
        vec![var(1), var(2)],
        vec![Atom([anchor, p0, var(1)]), Atom([var(1), p1, var(2)])],
    );
    let star = ConjunctiveQuery::new(
        vec![var(1), var(2)],
        vec![Atom([anchor, p0, var(1)]), Atom([anchor, p1, var(2)])],
    );
    for (name, q) in [("single", &single), ("chain", &chain), ("star", &star)] {
        let compiled = evaluate(&store, q);
        let legacy = evaluate_with(&store, q, &EvalOptions::legacy_indexed());
        assert_eq!(compiled, legacy, "{name}: compiled vs legacy-indexed");
        let scan = evaluate_with(&store, q, &EvalOptions::scan_baseline());
        assert_eq!(compiled, scan, "{name}: compiled vs full-scan");
    }
}

/// Million-triple triangle stress test for the leapfrog engine: a 1M
/// random background plus block-structured triangle edges whose answer
/// count is known by construction. The adaptive selector must route the
/// triangle to leapfrog, and its answers must match both binary-join
/// engines exactly. Ignored by default (it wants release mode); CI runs
/// it explicitly with `cargo test --release -- --ignored`.
#[test]
#[ignore = "1M-triple stress test: run in release mode with -- --ignored"]
fn million_triple_triangle_wcoj_matches_compiled() {
    const N: usize = 1_000_000;
    const SUBJECTS: u64 = 100_000;
    const PREDICATES: u64 = 16;
    let mut rng = 0x5eed_u64;
    let mut batch = Vec::with_capacity(N);
    for _ in 0..N {
        let s = Id((lcg(&mut rng) % SUBJECTS) as u32);
        let p = Id(1_000_000 + (lcg(&mut rng) % PREDICATES) as u32);
        let o = Id((lcg(&mut rng) % SUBJECTS) as u32);
        batch.push([s, p, o]);
    }
    // Triangle tier (same construction as the join_throughput bench):
    // R: x→y fan-out FY, S: y→ contiguous BZ-long z-block, T: x→ BZ-long
    // z-block that overlaps the S-blocks of x's first two y's for one x in
    // 16 and sits in an S-unreachable high z-range otherwise — exactly BZ
    // triangles per overlapping x.
    const NX: u32 = 2_048;
    const FY: u32 = 16;
    const BZ: u32 = 64;
    let (xb, yb, zb, zhi) = (3_000_000u32, 3_100_000u32, 3_200_000u32, 3_500_000u32);
    let (pr, ps, pt) = (Id(2_000_000), Id(2_000_001), Id(2_000_002));
    for i in 0..NX {
        let j0 = (i * FY) % NX;
        for k in 0..FY {
            batch.push([Id(xb + i), pr, Id(yb + j0 + k)]);
        }
        let t0 = if i % 16 == 0 {
            zb + j0 * BZ + BZ - 8
        } else {
            zhi + i * BZ
        };
        for k in 0..BZ {
            batch.push([Id(xb + i), pt, Id(t0 + k)]);
        }
    }
    for j in 0..NX {
        for k in 0..BZ {
            batch.push([Id(yb + j), ps, Id(zb + j * BZ + k)]);
        }
    }
    let mut store = TripleStore::new();
    store.insert_batch(&batch);
    assert!(
        store.len() > 1_000_000,
        "stress store should exceed 1M triples"
    );

    let var = |v: u32| QTerm::Var(Var(v));
    let tri = ConjunctiveQuery::new(
        vec![var(0), var(1), var(2)],
        vec![
            Atom([var(0), QTerm::Const(pr), var(1)]),
            Atom([var(1), QTerm::Const(ps), var(2)]),
            Atom([var(0), QTerm::Const(pt), var(2)]),
        ],
    );
    let (auto, stats) = evaluate_with_stats(&store, &tri, &EvalOptions::default());
    assert_eq!(
        stats.engine,
        Engine::Wcoj,
        "triangle must route to leapfrog"
    );
    assert!(stats.lf_seeks > 0);
    assert_eq!(stats.lf_emitted, auto.len() as u64);
    assert_eq!(
        auto.len(),
        (NX / 16 * BZ) as usize,
        "block construction fixes the triangle count"
    );
    let compiled = evaluate_with(&store, &tri, &EvalOptions::compiled());
    let legacy = evaluate_with(&store, &tri, &EvalOptions::legacy_indexed());
    assert_eq!(auto, compiled, "wcoj vs compiled at 1M scale");
    assert_eq!(auto, legacy, "wcoj vs legacy at 1M scale");
}
