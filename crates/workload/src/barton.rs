//! A Barton-like dataset: same schema shape as the MIT Barton library
//! catalog used in the paper's experiments, synthetic instance data.
//!
//! The paper reports: "The schema consists of 39 classes, 61 properties,
//! and 106 RDFS statements of the kinds listed in Table 1" over ≈35M
//! distinct triples. This generator reproduces the schema shape exactly
//! (38 subclass + 30 subproperty + 20 domain + 18 range statements = 106,
//! over 39 classes and 61 properties by default) and synthesizes
//! Zipf-skewed instance triples at any scale.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rdf_model::{Dataset, Id};
use rdf_schema::{Schema, SchemaStatement, VocabIds};

use crate::zipf::Zipf;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct BartonSpec {
    /// Number of classes (paper: 39).
    pub classes: usize,
    /// Number of properties (paper: 61).
    pub properties: usize,
    /// Number of distinct resources.
    pub resources: usize,
    /// Approximate number of instance triples to generate (distinct count
    /// may be slightly lower after deduplication).
    pub triples: usize,
    /// Zipf skew of class/property usage.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BartonSpec {
    fn default() -> Self {
        Self {
            classes: 39,
            properties: 61,
            resources: 10_000,
            triples: 100_000,
            skew: 1.0,
            seed: 0xb_a770,
        }
    }
}

impl BartonSpec {
    /// A small spec for unit tests and examples.
    pub fn tiny() -> Self {
        Self {
            resources: 300,
            triples: 2_000,
            ..Self::default()
        }
    }

    /// Scales the instance data.
    pub fn with_size(mut self, resources: usize, triples: usize) -> Self {
        self.resources = resources;
        self.triples = triples;
        self
    }
}

/// The generated dataset: data, schema, vocabulary ids, and the generated
/// class/property ids for workload construction.
#[derive(Debug, Clone)]
pub struct BartonDataset {
    /// Dictionary + triple store (instance triples only; the schema is
    /// kept separately, as a Tbox).
    pub db: Dataset,
    /// The RDFS.
    pub schema: Schema,
    /// Interned vocabulary.
    pub vocab: VocabIds,
    /// The class ids, most-used first.
    pub classes: Vec<Id>,
    /// The property ids, most-used first.
    pub properties: Vec<Id>,
}

/// Generates a Barton-like dataset.
pub fn generate_barton(spec: &BartonSpec) -> BartonDataset {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut db = Dataset::new();
    let vocab = VocabIds::intern(db.dict_mut());

    let classes: Vec<Id> = (0..spec.classes)
        .map(|i| db.dict_mut().intern_uri(&format!("barton:Class{i}")))
        .collect();
    let properties: Vec<Id> = (0..spec.properties)
        .map(|i| db.dict_mut().intern_uri(&format!("barton:prop{i}")))
        .collect();

    // --- Schema: 106 statements with the Barton shape. -----------------
    let mut schema = Schema::new();
    // Subclass forest: every class except the root points to an earlier
    // class (38 statements for 39 classes).
    for i in 1..classes.len() {
        let parent = rng.random_range(0..i);
        schema.add(SchemaStatement::SubClassOf(classes[i], classes[parent]));
    }
    // Subproperty forest over the *unpopular tail* of the property
    // vocabulary (indexes 30‥): Zipf-sampled instance data and queries
    // concentrate on the low indexes, so queried properties have few
    // subproperty descendants — which is what keeps the paper's |Qr|/|Q|
    // in the 4–23× range rather than exploding combinatorially.
    let tail_start = spec.properties.saturating_sub(31).min(30);
    let sp_count = spec.properties.saturating_sub(tail_start + 1).min(30);
    for k in 1..=sp_count {
        let i = tail_start + k;
        let parent = rng.random_range(tail_start..i);
        schema.add(SchemaStatement::SubPropertyOf(
            properties[i],
            properties[parent],
        ));
    }
    // Domain typing for 20 properties, range typing for 18.
    for (k, &p) in properties.iter().enumerate().take(20) {
        let c = classes[(k * 7) % classes.len()];
        schema.add(SchemaStatement::Domain(p, c));
    }
    for (k, &p) in properties.iter().enumerate().skip(20).take(18) {
        let c = classes[(k * 5) % classes.len()];
        schema.add(SchemaStatement::Range(p, c));
    }

    // --- Instance data. -------------------------------------------------
    let resources: Vec<Id> = (0..spec.resources)
        .map(|i| db.dict_mut().intern_uri(&format!("barton:r{i}")))
        .collect();
    let literals: Vec<Id> = (0..(spec.resources / 4).max(8))
        .map(|i| db.dict_mut().intern_literal(&format!("value {i}")))
        .collect();
    let class_zipf = Zipf::new(classes.len(), spec.skew);
    let prop_zipf = Zipf::new(properties.len(), spec.skew);
    let res_zipf = Zipf::new(resources.len(), spec.skew / 2.0);

    // Every resource gets a type; remaining budget goes to property
    // triples.
    for &r in &resources {
        let c = classes[class_zipf.sample(&mut rng)];
        db.store_mut().insert([r, vocab.rdf_type, c]);
    }
    let budget = spec.triples.saturating_sub(resources.len());
    for _ in 0..budget {
        let s = resources[res_zipf.sample(&mut rng)];
        let p = properties[prop_zipf.sample(&mut rng)];
        let o = if rng.random_bool(0.3) {
            literals[rng.random_range(0..literals.len())]
        } else {
            resources[res_zipf.sample(&mut rng)]
        };
        db.store_mut().insert([s, p, o]);
    }

    BartonDataset {
        db,
        schema,
        vocab,
        classes,
        properties,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_schema::StatementKind;

    #[test]
    fn schema_shape_matches_paper() {
        let d = generate_barton(&BartonSpec::tiny());
        assert_eq!(d.schema.class_count(), 39);
        // Not all 61 properties necessarily appear in schema statements,
        // but the generated vocabulary has 61.
        assert_eq!(d.properties.len(), 61);
        assert_eq!(d.schema.len(), 106);
        let count = |k: StatementKind| {
            d.schema
                .statements()
                .iter()
                .filter(|s| s.kind() == k)
                .count()
        };
        assert_eq!(count(StatementKind::SubClassOf), 38);
        assert_eq!(count(StatementKind::SubPropertyOf), 30);
        assert_eq!(count(StatementKind::Domain), 20);
        assert_eq!(count(StatementKind::Range), 18);
    }

    #[test]
    fn instance_data_has_types_and_properties() {
        let spec = BartonSpec::tiny();
        let d = generate_barton(&spec);
        assert!(d.db.len() > spec.resources);
        // Every resource is typed.
        let type_count =
            d.db.store()
                .match_count(&rdf_model::StorePattern::with_p(d.vocab.rdf_type));
        assert_eq!(type_count, spec.resources);
    }

    #[test]
    fn skew_concentrates_usage() {
        let d = generate_barton(&BartonSpec::tiny());
        let count_p = |p: Id| {
            d.db.store()
                .match_count(&rdf_model::StorePattern::with_p(p))
        };
        // The most popular property is used far more than the tail.
        assert!(count_p(d.properties[0]) > count_p(d.properties[59]).max(1));
    }

    #[test]
    fn determinism() {
        let a = generate_barton(&BartonSpec::tiny());
        let b = generate_barton(&BartonSpec::tiny());
        assert_eq!(a.db.store().triples(), b.db.store().triples());
        assert_eq!(a.schema.len(), b.schema.len());
    }

    #[test]
    fn saturation_adds_implicit_triples() {
        let d = generate_barton(&BartonSpec::tiny());
        let mut store = d.db.store().clone();
        let added = rdf_schema::saturate(&mut store, &d.schema, &d.vocab);
        assert!(added > 0, "the hierarchy must entail something");
        // Linear bound from Section 6.5: O(|D| × |S|).
        assert!(added <= d.db.len() * d.schema.len());
    }
}
