//! The free-form query generator: "queries of controllable size, shape,
//! and commonality" (Section 6, "Data and queries").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rdf_model::{Dictionary, Id};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, Var};

/// Query shapes used across the paper's experiments (Sections 6.2/6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// All atoms share the subject variable — the query graph is a clique,
    /// the hardest case for the search (most edges).
    Star,
    /// Each atom's object is the next atom's subject — the average case.
    Chain,
    /// A chain whose last object closes on the first subject.
    Cycle,
    /// Random connected query graph, few shared variables.
    RandomSparse,
    /// Random connected query graph, many shared variables.
    RandomDense,
    /// A round-robin mix of all of the above.
    Mixed,
}

impl Shape {
    /// The non-mixed shapes, for round-robin assignment.
    pub const BASIC: [Shape; 5] = [
        Shape::Star,
        Shape::Chain,
        Shape::Cycle,
        Shape::RandomSparse,
        Shape::RandomDense,
    ];

    /// Display name used by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self {
            Shape::Star => "star",
            Shape::Chain => "chain",
            Shape::Cycle => "cycle",
            Shape::RandomSparse => "random-sparse",
            Shape::RandomDense => "random-dense",
            Shape::Mixed => "mixed",
        }
    }
}

/// Query commonality across the workload: how much structure (and which
/// constants) queries share — high commonality creates the factorization
/// opportunities View Fusion exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Commonality {
    /// Queries derive from a small pool of templates.
    High,
    /// Queries are generated independently.
    Low,
}

/// Parameters of a generated workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of queries.
    pub queries: usize,
    /// Atoms per query.
    pub atoms: usize,
    /// Query shape.
    pub shape: Shape,
    /// Cross-query commonality.
    pub commonality: Commonality,
    /// Probability that an atom's object is a constant.
    pub object_const_prob: f64,
    /// Size of the property vocabulary to draw from.
    pub property_pool: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with the paper's common defaults (10-atom queries).
    pub fn new(queries: usize, atoms: usize, shape: Shape, commonality: Commonality) -> Self {
        Self {
            queries,
            atoms,
            shape,
            commonality,
            object_const_prob: 0.4,
            property_pool: match commonality {
                Commonality::High => (atoms * 2).max(4),
                Commonality::Low => (queries * atoms).max(16),
            },
            seed: 0x5eed,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a workload, interning its constants into `dict`.
///
/// Every query is connected, safe, and minimal by construction (atoms
/// within a query carry pairwise distinct property constants, so no atom
/// folds onto another).
pub fn generate_workload(spec: &WorkloadSpec, dict: &mut Dictionary) -> Vec<ConjunctiveQuery> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let properties: Vec<Id> = (0..spec.property_pool.max(spec.atoms))
        .map(|i| dict.intern_uri(&format!("wl:p{i}")))
        .collect();
    let objects: Vec<Id> = (0..spec.property_pool.max(8))
        .map(|i| dict.intern_uri(&format!("wl:o{i}")))
        .collect();

    let mut out = Vec::with_capacity(spec.queries);
    // High commonality: a small template pool; each query perturbs a
    // template's tail. Low commonality: every query fresh.
    let template_count = match spec.commonality {
        Commonality::High => spec.queries.div_ceil(3).max(1),
        Commonality::Low => spec.queries,
    };
    let mut templates: Vec<ConjunctiveQuery> = Vec::with_capacity(template_count);
    for qi in 0..spec.queries {
        let shape = match spec.shape {
            Shape::Mixed => Shape::BASIC[qi % Shape::BASIC.len()],
            s => s,
        };
        let q = if qi < template_count {
            let q = generate_one(shape, spec, &properties, &objects, &mut rng);
            templates.push(q.clone());
            q
        } else {
            let template = &templates[rng.random_range(0..templates.len())];
            perturb(template, spec, &properties, &objects, &mut rng)
        };
        out.push(q);
    }
    out
}

/// Generates one query of the given shape.
fn generate_one(
    shape: Shape,
    spec: &WorkloadSpec,
    properties: &[Id],
    objects: &[Id],
    rng: &mut SmallRng,
) -> ConjunctiveQuery {
    let n = spec.atoms.max(1);
    // Pairwise-distinct properties keep the query minimal.
    let props = distinct_sample(properties, n, rng);
    let mut atoms = Vec::with_capacity(n);
    let mut next_var = 0u32;
    let fresh = |next_var: &mut u32| {
        let v = Var(*next_var);
        *next_var += 1;
        v
    };
    match shape {
        Shape::Star => {
            let center = fresh(&mut next_var);
            for (i, &p) in props.iter().enumerate() {
                let obj = object_term(spec, objects, &mut next_var, rng, i == n - 1);
                atoms.push(Atom::new(center, p, obj));
            }
        }
        Shape::Chain | Shape::Cycle => {
            let first = fresh(&mut next_var);
            let mut current = first;
            for (i, &p) in props.iter().enumerate() {
                let last = i == n - 1;
                if last && shape == Shape::Cycle && n > 1 {
                    atoms.push(Atom::new(current, p, first));
                } else if last && rng.random_bool(spec.object_const_prob) {
                    atoms.push(Atom::new(
                        current,
                        p,
                        objects[rng.random_range(0..objects.len())],
                    ));
                } else {
                    let nxt = fresh(&mut next_var);
                    atoms.push(Atom::new(current, p, nxt));
                    current = nxt;
                }
            }
        }
        Shape::RandomSparse | Shape::RandomDense => {
            let reuse_prob = if shape == Shape::RandomDense {
                0.8
            } else {
                0.25
            };
            let mut vars = vec![fresh(&mut next_var)];
            for &p in &props {
                // Subject from the existing pool keeps the graph connected.
                let s = vars[rng.random_range(0..vars.len())];
                let o: QTerm = if rng.random_bool(spec.object_const_prob) {
                    QTerm::Const(objects[rng.random_range(0..objects.len())])
                } else if rng.random_bool(reuse_prob) && vars.len() > 1 {
                    let mut v = vars[rng.random_range(0..vars.len())];
                    // Avoid a self-loop that could make the atom foldable.
                    if v == s {
                        v = vars[(rng.random_range(0..vars.len()) + 1) % vars.len()];
                    }
                    QTerm::Var(v)
                } else {
                    let v = fresh(&mut next_var);
                    vars.push(v);
                    QTerm::Var(v)
                };
                if let QTerm::Var(v) = o {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                atoms.push(Atom::new(s, p, o));
            }
        }
        // xlint: allow(X001, reason = "Mixed is resolved to a concrete shape before dispatch")
        Shape::Mixed => unreachable!("mixed resolves per query"),
    }
    finish_query(atoms, rng)
}

fn object_term(
    spec: &WorkloadSpec,
    objects: &[Id],
    next_var: &mut u32,
    rng: &mut SmallRng,
    _last: bool,
) -> QTerm {
    if rng.random_bool(spec.object_const_prob) {
        QTerm::Const(objects[rng.random_range(0..objects.len())])
    } else {
        let v = Var(*next_var);
        *next_var += 1;
        QTerm::Var(v)
    }
}

/// Head: 1–3 distinct variables, always including the first variable.
fn finish_query(atoms: Vec<Atom>, rng: &mut SmallRng) -> ConjunctiveQuery {
    let mut vars: Vec<Var> = Vec::new();
    for a in &atoms {
        for v in a.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    let head_size = rng.random_range(1..=3usize.min(vars.len()));
    let mut head: Vec<QTerm> = vec![QTerm::Var(vars[0])];
    for &v in vars.iter().skip(1) {
        if head.len() >= head_size {
            break;
        }
        if rng.random_bool(0.5) {
            head.push(QTerm::Var(v));
        }
    }
    ConjunctiveQuery::new(head, atoms).normalized()
}

/// High-commonality perturbation: keep ~70% of the template's atoms,
/// regenerate the tail with fresh properties (constants shared through the
/// same pools).
fn perturb(
    template: &ConjunctiveQuery,
    spec: &WorkloadSpec,
    properties: &[Id],
    objects: &[Id],
    rng: &mut SmallRng,
) -> ConjunctiveQuery {
    let keep = (template.atoms.len() * 7).div_ceil(10).max(1);
    let mut atoms: Vec<Atom> = template.atoms[..keep].to_vec();
    let mut next_var = template.max_var().map_or(0, |m| m + 1);
    let used: Vec<Id> = atoms
        .iter()
        .filter_map(|a| a.terms()[1].as_const())
        .collect();
    let mut candidates: Vec<Id> = properties
        .iter()
        .copied()
        .filter(|p| !used.contains(p))
        .collect();
    for i in keep..template.atoms.len() {
        // Attach to a variable of the kept prefix to stay connected.
        let anchor = atoms[rng.random_range(0..atoms.len().min(keep))]
            .vars()
            .next()
            // xlint: allow(X001, reason = "every generated atom binds at least its subject variable")
            .expect("kept atoms have variables");
        let p = if candidates.is_empty() {
            properties[rng.random_range(0..properties.len())]
        } else {
            candidates.swap_remove(rng.random_range(0..candidates.len()))
        };
        let o: QTerm = if rng.random_bool(spec.object_const_prob) {
            QTerm::Const(objects[rng.random_range(0..objects.len())])
        } else {
            let v = Var(next_var);
            next_var += 1;
            QTerm::Var(v)
        };
        atoms.push(Atom::new(anchor, p, o));
        let _ = i;
    }
    finish_query(atoms, rng)
}

/// Generates a dataset whose vocabulary matches a workload spec's pools,
/// so that every generated query atom has non-trivial statistics.
///
/// The paper's first generator "simply outputs the desired queries"; for
/// the cost model to be meaningful the data must contain triples matching
/// the query atoms (the search only consumes per-atom counts, not full
/// join satisfiability). Subjects are drawn from a resource pool, and
/// (property, object) pairs from the same pools the query generator uses.
pub fn generate_matching_data(
    spec: &WorkloadSpec,
    dict: &mut Dictionary,
    store: &mut rdf_model::TripleStore,
    triples: usize,
) {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xda7a);
    let properties: Vec<Id> = (0..spec.property_pool.max(spec.atoms))
        .map(|i| dict.intern_uri(&format!("wl:p{i}")))
        .collect();
    let objects: Vec<Id> = (0..spec.property_pool.max(8))
        .map(|i| dict.intern_uri(&format!("wl:o{i}")))
        .collect();
    // A deliberately small resource pool gives every property a join
    // fan-out well above 1 (many triples per subject), as in real RDF
    // datasets where popular properties dominate. This is what makes
    // multi-atom view cardinality estimates grow with the atom count —
    // the effect behind the paper's large relative cost reductions. The
    // pool scales inversely with the property vocabulary so the average
    // per-property fan-out (≈ triples / (pool × resources)) stays ≈ 4
    // regardless of workload commonality.
    let n_resources = (triples / (4 * spec.property_pool.max(spec.atoms))).clamp(8, 1_000);
    let resources: Vec<Id> = (0..n_resources)
        .map(|i| dict.intern_uri(&format!("wl:r{i}")))
        .collect();
    let prop_zipf = crate::zipf::Zipf::new(properties.len(), 0.8);
    for _ in 0..triples {
        let s = resources[rng.random_range(0..resources.len())];
        let p = properties[prop_zipf.sample(&mut rng)];
        // Mix constant-pool objects (matched by object-constant atoms) and
        // resource objects (join partners for chain queries).
        let o = if rng.random_bool(0.5) {
            objects[rng.random_range(0..objects.len())]
        } else {
            resources[rng.random_range(0..resources.len())]
        };
        store.insert([s, p, o]);
    }
}

/// Samples `n` distinct items (repeats allowed only if the pool is too
/// small).
fn distinct_sample(pool: &[Id], n: usize, rng: &mut SmallRng) -> Vec<Id> {
    if pool.len() >= n {
        let mut idx: Vec<usize> = (0..pool.len()).collect();
        // Partial Fisher–Yates.
        for i in 0..n {
            let j = rng.random_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..n].iter().map(|&i| pool[i]).collect()
    } else {
        (0..n)
            .map(|_| pool[rng.random_range(0..pool.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_query::graph::JoinGraph;
    use rdf_query::minimize::is_minimal;

    fn check_workload(shape: Shape, commonality: Commonality) -> Vec<ConjunctiveQuery> {
        let mut dict = Dictionary::new();
        let spec = WorkloadSpec::new(6, 5, shape, commonality);
        let qs = generate_workload(&spec, &mut dict);
        assert_eq!(qs.len(), 6);
        for q in &qs {
            assert_eq!(q.atoms.len(), 5, "{shape:?}");
            assert!(q.is_safe());
            assert!(JoinGraph::new(&q.atoms).is_connected(), "{shape:?} {q:?}");
            assert!(is_minimal(q), "{shape:?} {q:?}");
        }
        qs
    }

    #[test]
    fn all_shapes_produce_valid_queries() {
        for shape in Shape::BASIC {
            check_workload(shape, Commonality::Low);
            check_workload(shape, Commonality::High);
        }
        check_workload(Shape::Mixed, Commonality::High);
    }

    #[test]
    fn star_is_a_clique() {
        let qs = check_workload(Shape::Star, Commonality::Low);
        for q in &qs {
            let g = JoinGraph::new(&q.atoms);
            for i in 0..q.atoms.len() {
                assert_eq!(g.neighbors(i).len(), q.atoms.len() - 1);
            }
        }
    }

    #[test]
    fn chain_is_a_path() {
        let qs = check_workload(Shape::Chain, Commonality::Low);
        for q in &qs {
            let g = JoinGraph::new(&q.atoms);
            let degree_one = (0..q.atoms.len())
                .filter(|&i| g.neighbors(i).len() == 1)
                .count();
            assert!(degree_one >= 1, "a path has endpoints: {q:?}");
        }
    }

    #[test]
    fn determinism() {
        let mut d1 = Dictionary::new();
        let mut d2 = Dictionary::new();
        let spec = WorkloadSpec::new(4, 6, Shape::RandomDense, Commonality::High);
        assert_eq!(
            generate_workload(&spec, &mut d1),
            generate_workload(&spec, &mut d2)
        );
    }

    #[test]
    fn seeds_differ() {
        let mut dict = Dictionary::new();
        let spec = WorkloadSpec::new(4, 6, Shape::Chain, Commonality::Low);
        let a = generate_workload(&spec, &mut dict);
        let b = generate_workload(&spec.clone().with_seed(99), &mut dict);
        assert_ne!(a, b);
    }

    #[test]
    fn high_commonality_shares_atoms() {
        let mut dict = Dictionary::new();
        // Commonality proxy: the largest pairwise overlap of atom
        // signatures between two queries. Template-derived queries share
        // whole prefixes, so some pair overlaps heavily; low-commonality
        // overlap is incidental (single-property coincidences).
        let shared = |qs: &[ConjunctiveQuery]| {
            let sig = |q: &ConjunctiveQuery| -> std::collections::HashSet<(Id, Option<Id>)> {
                q.atoms
                    .iter()
                    .filter_map(|a| {
                        a.terms()[1]
                            .as_const()
                            .map(|p| (p, a.terms()[2].as_const()))
                    })
                    .collect()
            };
            let sigs: Vec<_> = qs.iter().map(sig).collect();
            let mut best = 0;
            for i in 0..sigs.len() {
                for j in i + 1..sigs.len() {
                    best = best.max(sigs[i].intersection(&sigs[j]).count());
                }
            }
            best
        };
        let hi = generate_workload(
            &WorkloadSpec::new(12, 8, Shape::Chain, Commonality::High),
            &mut dict,
        );
        let lo = generate_workload(
            &WorkloadSpec::new(12, 8, Shape::Chain, Commonality::Low).with_seed(5),
            &mut dict,
        );
        assert!(
            shared(&hi) > shared(&lo),
            "high {} vs low {}",
            shared(&hi),
            shared(&lo)
        );
    }
}
