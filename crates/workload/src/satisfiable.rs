//! The satisfiability-aware query generator: "The second takes as input
//! not only the workload characteristics, but also a dataset (RDF + RDFS)
//! and generates queries having non-empty answers on the given dataset"
//! (Section 6).
//!
//! Queries are grown by sampling actual triples: a star samples the
//! outgoing edges of one subject, a chain follows object→subject links.
//! Constants are then selectively abstracted into variables, which can
//! only enlarge the answer set — so every query stays satisfiable.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rdf_model::{vocab, Dataset, Id, StorePattern, Triple};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, Var};

use crate::generator::Shape;

/// Parameters for satisfiable-workload generation.
#[derive(Debug, Clone)]
pub struct SatisfiableSpec {
    /// Number of queries.
    pub queries: usize,
    /// Atoms per query (best effort: data may not support long chains from
    /// every seed; the generator retries other seeds).
    pub atoms: usize,
    /// Star, chain or mixed (other shapes fall back to star).
    pub shape: Shape,
    /// Probability of keeping an object constant instead of abstracting it.
    pub object_const_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SatisfiableSpec {
    /// A spec with the defaults used by the reformulation experiments.
    pub fn new(queries: usize, atoms: usize, shape: Shape) -> Self {
        Self {
            queries,
            atoms,
            shape,
            object_const_prob: 0.35,
            seed: 0x5a71,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates satisfiable queries over `db`. Panics if the dataset is
/// empty.
pub fn generate_satisfiable(db: &Dataset, spec: &SatisfiableSpec) -> Vec<ConjunctiveQuery> {
    assert!(!db.is_empty(), "satisfiable generation needs data");
    // `rdf:type` objects (class names) are never abstracted into
    // variables: a variable class reformulates into one branch per schema
    // class (rule 5), and real workloads — like the paper's Q1/Q2, whose
    // |Qr|/|Q| stays in the 4–23× range — query concrete classes.
    let rdf_type = db.dict().lookup_uri(vocab::RDF_TYPE);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.queries);
    for qi in 0..spec.queries {
        let shape = match spec.shape {
            Shape::Mixed => {
                if qi % 2 == 0 {
                    Shape::Star
                } else {
                    Shape::Chain
                }
            }
            Shape::Chain => Shape::Chain,
            _ => Shape::Star,
        };
        let q = match shape {
            Shape::Chain => grow_chain(db, spec, rdf_type, &mut rng),
            _ => grow_star(db, spec, rdf_type, &mut rng),
        };
        out.push(q);
    }
    out
}

fn random_triple(db: &Dataset, rng: &mut SmallRng) -> Triple {
    let triples = db.store().triples();
    triples[rng.random_range(0..triples.len())]
}

/// Builds a star around a subject with enough distinct outgoing
/// properties; abstracts the subject into the head variable.
fn grow_star(
    db: &Dataset,
    spec: &SatisfiableSpec,
    rdf_type: Option<Id>,
    rng: &mut SmallRng,
) -> ConjunctiveQuery {
    // Find a subject with many distinct properties (retry a few seeds and
    // keep the best).
    let mut best: Option<Vec<Triple>> = None;
    for _ in 0..64 {
        let seed = random_triple(db, rng);
        let outgoing = db.store().matching(&StorePattern::with_s(seed[0]));
        // Keep one triple per distinct property (minimality).
        let mut by_prop: Vec<Triple> = Vec::new();
        for t in outgoing {
            if !by_prop.iter().any(|x| x[1] == t[1]) {
                by_prop.push(t);
            }
        }
        if best.as_ref().is_none_or(|b| by_prop.len() > b.len()) {
            best = Some(by_prop.clone());
        }
        if by_prop.len() >= spec.atoms {
            break;
        }
    }
    // xlint: allow(X001, reason = "callers check the dataset is non-empty before sampling")
    let chosen = best.expect("non-empty dataset");
    let n = chosen.len().min(spec.atoms).max(1);
    let center = Var(0);
    let mut next_var = 1u32;
    let mut atoms = Vec::with_capacity(n);
    for t in chosen.into_iter().take(n) {
        let keep_const = Some(t[1]) == rdf_type || rng.random_bool(spec.object_const_prob);
        let obj: QTerm = if keep_const {
            QTerm::Const(t[2])
        } else {
            let v = Var(next_var);
            next_var += 1;
            QTerm::Var(v)
        };
        atoms.push(Atom::new(center, t[1], obj));
    }
    make_head(atoms, rng)
}

/// Follows object→subject links; abstracts the path into chained
/// variables.
fn grow_chain(
    db: &Dataset,
    spec: &SatisfiableSpec,
    rdf_type: Option<Id>,
    rng: &mut SmallRng,
) -> ConjunctiveQuery {
    let mut best: Vec<Triple> = Vec::new();
    for _ in 0..64 {
        let mut path = vec![random_triple(db, rng)];
        while path.len() < spec.atoms {
            // xlint: allow(X001, reason = "path starts with one seed triple and only grows")
            let tail = path.last().unwrap()[2];
            let nexts = db.store().matching(&StorePattern::with_s(tail));
            // Avoid immediate cycles on the same property (keeps the query
            // minimal).
            let candidates: Vec<Triple> = nexts
                .into_iter()
                .filter(|t| !path.iter().any(|p| p[1] == t[1]))
                .collect();
            if candidates.is_empty() {
                break;
            }
            path.push(candidates[rng.random_range(0..candidates.len())]);
        }
        if path.len() > best.len() {
            best = path;
        }
        if best.len() >= spec.atoms {
            break;
        }
    }
    let mut atoms = Vec::with_capacity(best.len());
    let n = best.len();
    for (i, t) in best.into_iter().enumerate() {
        let s = Var(i as u32);
        let last = i + 1 == n;
        let keep_const =
            last && (Some(t[1]) == rdf_type || rng.random_bool(spec.object_const_prob));
        let o: QTerm = if keep_const {
            QTerm::Const(t[2])
        } else {
            QTerm::Var(Var(i as u32 + 1))
        };
        atoms.push(Atom::new(s, t[1], o));
    }
    make_head(atoms, rng)
}

fn make_head(atoms: Vec<Atom>, rng: &mut SmallRng) -> ConjunctiveQuery {
    let mut vars: Vec<Var> = Vec::new();
    for a in &atoms {
        for v in a.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    let head_size = rng.random_range(1..=2usize.min(vars.len()));
    let head: Vec<QTerm> = vars
        .iter()
        .take(head_size)
        .map(|&v| QTerm::Var(v))
        .collect();
    ConjunctiveQuery::new(head, atoms).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barton::{generate_barton, BartonSpec};
    use rdf_engine::evaluate;
    use rdf_query::graph::JoinGraph;

    #[test]
    fn generated_queries_are_satisfiable() {
        let d = generate_barton(&BartonSpec::tiny());
        for shape in [Shape::Star, Shape::Chain, Shape::Mixed] {
            let qs = generate_satisfiable(&d.db, &SatisfiableSpec::new(6, 4, shape));
            assert_eq!(qs.len(), 6);
            for q in &qs {
                assert!(q.is_safe());
                assert!(JoinGraph::new(&q.atoms).is_connected());
                let answers = evaluate(d.db.store(), q);
                assert!(!answers.is_empty(), "{shape:?}: {q:?}");
            }
        }
    }

    #[test]
    fn star_queries_share_subject_variable() {
        let d = generate_barton(&BartonSpec::tiny());
        let qs = generate_satisfiable(&d.db, &SatisfiableSpec::new(4, 4, Shape::Star));
        for q in &qs {
            let subj = q.atoms[0].terms()[0];
            assert!(q.atoms.iter().all(|a| a.terms()[0] == subj));
        }
    }

    #[test]
    fn determinism() {
        let d = generate_barton(&BartonSpec::tiny());
        let spec = SatisfiableSpec::new(5, 4, Shape::Mixed);
        assert_eq!(
            generate_satisfiable(&d.db, &spec),
            generate_satisfiable(&d.db, &spec)
        );
    }

    #[test]
    fn chains_have_requested_length_when_data_allows() {
        let d = generate_barton(&BartonSpec::default().with_size(500, 8_000));
        let qs = generate_satisfiable(&d.db, &SatisfiableSpec::new(4, 3, Shape::Chain));
        for q in &qs {
            assert!(!q.atoms.is_empty());
            assert!(q.atoms.len() <= 3);
        }
    }
}
