//! # rdfviews-workload
//!
//! Synthetic datasets and query workloads reproducing the experimental
//! setup of *View Selection in Semantic Web Databases* (Section 6):
//!
//! * [`barton`] — a **Barton-like** dataset generator. The paper evaluates
//!   on the Barton library catalog (≈35M distinct triples after cleaning,
//!   with an RDFS of 39 classes, 61 properties and 106 schema statements).
//!   The real dataset is not redistributable here, so this module
//!   synthesizes a dataset with the same schema *shape* (class/property
//!   hierarchies, domain/range typing, identical statement counts) and
//!   Zipf-skewed instance data at a configurable scale — view-selection
//!   quality depends only on per-atom statistics and schema shape, which
//!   the generator preserves.
//! * [`generator`] — the paper's two query generators: a free-form one
//!   producing queries "of controllable size, shape, and commonality"
//!   (star, chain, cycle, random sparse/dense graph, mixed; high/low
//!   commonality), and —
//! * [`satisfiable`] — the second generator, which samples the dataset so
//!   every produced query has non-empty answers.

pub mod barton;
pub mod generator;
pub mod satisfiable;
mod zipf;

pub use barton::{generate_barton, BartonDataset, BartonSpec};
pub use generator::{generate_matching_data, generate_workload, Commonality, Shape, WorkloadSpec};
pub use satisfiable::{generate_satisfiable, SatisfiableSpec};
