//! A small Zipf sampler (power-law weights `1/(i+1)^s`).

use rand::Rng;

/// Samples indexes `0..n` with Zipfian skew.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `s` (s = 0 is
    /// uniform; s ≈ 1 is the classic skew).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn skew_prefers_small_indexes() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99] * 5);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "{counts:?}");
        }
    }

    #[test]
    fn all_indexes_reachable() {
        let z = Zipf::new(5, 1.5);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(z.sample(&mut rng));
        }
        assert_eq!(seen.len(), 5);
    }
}
