//! Property tests for the workload generators: every generated query must
//! be safe, connected and minimal, across the whole parameter space.

use proptest::prelude::*;
use rdfviews_workload::{
    generate_barton, generate_satisfiable, generate_workload, BartonSpec, Commonality,
    SatisfiableSpec, Shape, WorkloadSpec,
};

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Star),
        Just(Shape::Chain),
        Just(Shape::Cycle),
        Just(Shape::RandomSparse),
        Just(Shape::RandomDense),
        Just(Shape::Mixed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn free_generator_invariants(
        seed in 0u64..10_000,
        shape in shape_strategy(),
        queries in 1usize..8,
        atoms in 1usize..8,
        high in any::<bool>(),
        obj_prob in 0.0f64..1.0,
    ) {
        let mut dict = rdf_model::Dictionary::new();
        let mut spec = WorkloadSpec::new(
            queries,
            atoms,
            shape,
            if high { Commonality::High } else { Commonality::Low },
        )
        .with_seed(seed);
        spec.object_const_prob = obj_prob;
        let ws = generate_workload(&spec, &mut dict);
        prop_assert_eq!(ws.len(), queries);
        for q in &ws {
            prop_assert_eq!(q.atoms.len(), atoms);
            prop_assert!(q.is_safe());
            prop_assert!(rdf_query::graph::JoinGraph::new(&q.atoms).is_connected());
            prop_assert!(rdf_query::minimize::is_minimal(q), "{q:?}");
            prop_assert!(!q.head.is_empty());
        }
    }

    #[test]
    fn satisfiable_generator_invariants(
        seed in 0u64..2_000,
        queries in 1usize..5,
        atoms in 1usize..5,
    ) {
        let data = generate_barton(&BartonSpec::tiny());
        let ws = generate_satisfiable(
            &data.db,
            &SatisfiableSpec::new(queries, atoms, Shape::Mixed).with_seed(seed),
        );
        prop_assert_eq!(ws.len(), queries);
        for q in &ws {
            prop_assert!(q.is_safe());
            prop_assert!(rdf_query::graph::JoinGraph::new(&q.atoms).is_connected());
            let answers = rdf_engine::evaluate(data.db.store(), q);
            prop_assert!(!answers.is_empty(), "{q:?}");
        }
    }
}
