//! The fixpoint reformulation engine (Algorithm 1).

use rdf_model::{FxHashMap, Id};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, UnionQuery, Var};
use rdf_schema::{Schema, VocabIds};

/// Safety limits for the fixpoint. Reformulation is worst-case exponential
/// in the query size (Theorem 4.1); the limit turns a runaway expansion into
/// an explicit error instead of memory exhaustion.
#[derive(Debug, Clone, Copy)]
pub struct ReformLimit {
    /// Maximum number of distinct queries in the output union.
    pub max_queries: usize,
}

impl Default for ReformLimit {
    fn default() -> Self {
        Self {
            max_queries: 1_000_000,
        }
    }
}

/// The worst-case output size of Theorem 4.1: `(2·|S|²)^m` for a schema of
/// `|S|` statements and a query of `m` atoms (saturating arithmetic).
pub fn theorem_4_1_bound(schema_len: usize, atoms: usize) -> u128 {
    let base = 2u128.saturating_mul((schema_len as u128).saturating_mul(schema_len as u128));
    base.saturating_pow(atoms as u32)
}

/// Reformulates `q` w.r.t. `schema` into a union of conjunctive queries.
///
/// The first branch of the result is (a normalized copy of) `q` itself.
pub fn reformulate(q: &ConjunctiveQuery, schema: &Schema, vocab: &VocabIds) -> UnionQuery {
    match reformulate_with_limit(q, schema, vocab, ReformLimit::default()) {
        Ok(ucq) => ucq,
        // xlint: allow(X001, reason = "documented panicking wrapper; reformulate_with_limit is the fallible API")
        Err(partial) => panic!(
            "reformulation limit exceeded: > {} branches for a {}-atom query over a {}-statement schema",
            partial.len(),
            q.atoms.len(),
            schema.len()
        ),
    }
}

/// [`reformulate`] with an explicit output-size limit; `Err` carries the
/// partially built union when the limit is hit.
pub fn reformulate_with_limit(
    q: &ConjunctiveQuery,
    schema: &Schema,
    vocab: &VocabIds,
    limit: ReformLimit,
) -> Result<UnionQuery, UnionQuery> {
    let start = q.normalized();
    let mut ucq = UnionQuery::singleton(start.clone());
    let mut queue: Vec<ConjunctiveQuery> = vec![start];
    let mut out_buf: Vec<ConjunctiveQuery> = Vec::new();
    while let Some(cur) = queue.pop() {
        expand_one(&cur, schema, vocab, &mut out_buf);
        for new_q in out_buf.drain(..) {
            if ucq.len() >= limit.max_queries {
                return Err(ucq);
            }
            let new_q = new_q.normalized();
            if ucq.push(new_q.clone()) {
                queue.push(new_q);
            }
        }
    }
    Ok(ucq)
}

/// Applies every rule once to every atom of `q`, collecting the rewritten
/// queries (the body of Algorithm 1's inner loop, lines 5–16).
fn expand_one(
    q: &ConjunctiveQuery,
    schema: &Schema,
    vocab: &VocabIds,
    out: &mut Vec<ConjunctiveQuery>,
) {
    let rdf_type = QTerm::Const(vocab.rdf_type);
    for (gi, g) in q.atoms.iter().enumerate() {
        let [s, p, o] = *g.terms();
        match p {
            QTerm::Const(pc) => {
                if p == rdf_type {
                    if let QTerm::Const(c2) = o {
                        // Rule 1: c1 ⊑ c2 ⇒ replace the class by each
                        // direct subclass.
                        for &c1 in schema.direct_sub_classes(c2) {
                            out.push(
                                q.with_atom_replaced(gi, Atom([s, rdf_type, QTerm::Const(c1)])),
                            );
                        }
                        // Rule 3: p domain c ⇒ ∃X t(s, p, X).
                        for &dp in schema.domain_properties(c2) {
                            let x = QTerm::Var(q.fresh_var());
                            out.push(q.with_atom_replaced(gi, Atom([s, QTerm::Const(dp), x])));
                        }
                        // Rule 4: p range c ⇒ ∃X t(X, p, s).
                        for &rp in schema.range_properties(c2) {
                            let x = QTerm::Var(q.fresh_var());
                            out.push(q.with_atom_replaced(gi, Atom([x, QTerm::Const(rp), s])));
                        }
                    } else if let QTerm::Var(x) = o {
                        // Rule 5: bind the class variable to every class of
                        // S (σ substitutes throughout the query, head
                        // included, to retain the join on X).
                        for ci in schema.classes() {
                            out.push(bind_var(q, x, ci));
                        }
                    }
                } else {
                    // Rule 2: p1 ⊑p p2 ⇒ replace the property by each
                    // direct subproperty.
                    for &p1 in schema.direct_sub_properties(pc) {
                        out.push(q.with_atom_replaced(gi, Atom([s, QTerm::Const(p1), o])));
                    }
                }
            }
            QTerm::Var(x) => {
                // Rule 6: bind the property variable to every property of S
                // and to rdf:type. With an empty schema no triple is
                // entailed, so the rule (including its rdf:type branch,
                // which would be redundant) does not fire at all.
                if !schema.is_empty() {
                    for pi in schema.properties() {
                        out.push(bind_var(q, x, pi));
                    }
                    out.push(bind_var(q, x, vocab.rdf_type));
                }
            }
        }
    }
}

/// `qσ=[x/c]`: substitutes the constant `c` for every occurrence of `x`.
fn bind_var(q: &ConjunctiveQuery, x: Var, c: Id) -> ConjunctiveQuery {
    let mut map: FxHashMap<Var, QTerm> = FxHashMap::default();
    map.insert(x, QTerm::Const(c));
    q.substitute(&map)
}

/// Reformulates a single atom, projected on all of its variables — the
/// per-atom statistic reformulation of Section 4.3 (post-reformulation
/// collects `|Reformulate(vᵢ, S)|` for every view atom `vᵢ`).
pub fn reformulate_atom(atom: &Atom, schema: &Schema, vocab: &VocabIds) -> UnionQuery {
    let mut head = Vec::new();
    let mut seen = rdf_model::FxHashSet::default();
    for v in atom.vars() {
        if seen.insert(v) {
            head.push(QTerm::Var(v));
        }
    }
    let q = ConjunctiveQuery::new(head, vec![*atom]);
    reformulate(&q, schema, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Dictionary;
    use rdf_query::parser::parse_query;
    use rdf_schema::SchemaStatement;

    struct Fix {
        dict: Dictionary,
        vocab: VocabIds,
        schema: Schema,
    }

    /// The paper's Section 4.3 example schema:
    /// painting ⊑ picture, isExpIn ⊑p isLocatIn.
    fn section_4_3_fixture() -> Fix {
        let mut dict = Dictionary::new();
        let vocab = VocabIds::intern(&mut dict);
        let painting = dict.intern_uri("painting");
        let picture = dict.intern_uri("picture");
        let is_exp_in = dict.intern_uri("isExpIn");
        let is_locat_in = dict.intern_uri("isLocatIn");
        let mut schema = Schema::new();
        schema.add(SchemaStatement::SubClassOf(painting, picture));
        schema.add(SchemaStatement::SubPropertyOf(is_exp_in, is_locat_in));
        Fix {
            dict,
            vocab,
            schema,
        }
    }

    #[test]
    fn table2_q1_class_atom() {
        // q1(X1) :- t(X1, rdf:type, picture) reformulates into exactly two
        // union terms: itself and the painting variant (Table 2, top).
        let mut f = section_4_3_fixture();
        let q = parse_query("q1(X1) :- t(X1, rdf:type, picture)", &mut f.dict).unwrap();
        let ucq = reformulate(&q.query, &f.schema, &f.vocab);
        assert_eq!(ucq.len(), 2);
        let painting = f.dict.lookup_uri("painting").unwrap();
        assert!(ucq
            .iter()
            .any(|b| b.atoms[0].0[2] == QTerm::Const(painting)));
    }

    #[test]
    fn table2_q4_property_variable() {
        // q4(X1, X2) :- t(X1, X2, picture): rule 6 grounds X2 to isLocatIn,
        // isExpIn and rdf:type; the rdf:type branch then triggers rule 1 and
        // the isLocatIn branch triggers rule 2 — six union terms in all
        // (Table 2, bottom).
        let mut f = section_4_3_fixture();
        let q = parse_query("q4(X1, X2) :- t(X1, X2, picture)", &mut f.dict).unwrap();
        let ucq = reformulate(&q.query, &f.schema, &f.vocab);
        assert_eq!(ucq.len(), 6);
        // Heads now contain constants for the bound branches.
        let with_const_head = ucq
            .iter()
            .filter(|b| b.head.iter().any(|t| !t.is_var()))
            .count();
        assert_eq!(with_const_head, 5);
        // The isExpIn branch keeps head isLocatIn (term 5 of Table 2):
        let is_locat_in = QTerm::Const(f.dict.lookup_uri("isLocatIn").unwrap());
        let is_exp_in = QTerm::Const(f.dict.lookup_uri("isExpIn").unwrap());
        assert!(ucq
            .iter()
            .any(|b| b.head[1] == is_locat_in && b.atoms[0].0[1] == is_exp_in));
        // The painting branch keeps head rdf:type (term 6 of Table 2):
        let rdf_type = QTerm::Const(f.vocab.rdf_type);
        let painting = QTerm::Const(f.dict.lookup_uri("painting").unwrap());
        assert!(ucq
            .iter()
            .any(|b| b.head[1] == rdf_type && b.atoms[0].0[2] == painting));
    }

    #[test]
    fn domain_and_range_rules() {
        // q(X) :- t(X, rdf:type, person) with domain(worksFor)=person,
        // range(employs)=person: rules 3 and 4 add existential variants.
        let mut dict = Dictionary::new();
        let vocab = VocabIds::intern(&mut dict);
        let q = parse_query("q(X) :- t(X, rdf:type, person)", &mut dict).unwrap();
        let person = dict.lookup_uri("person").unwrap();
        let works_for = dict.intern_uri("worksFor");
        let employs = dict.intern_uri("employs");
        let mut schema = Schema::new();
        schema.add(SchemaStatement::Domain(works_for, person));
        schema.add(SchemaStatement::Range(employs, person));
        let ucq = reformulate(&q.query, &schema, &vocab);
        // q itself, t(X, worksFor, F), t(F, employs, X).
        assert_eq!(ucq.len(), 3);
        let wf = QTerm::Const(works_for);
        let em = QTerm::Const(employs);
        assert!(ucq.iter().any(|b| b.atoms[0].0[1] == wf
            && b.atoms[0].0[0] == b.head[0]
            && b.atoms[0].0[2].is_var()));
        assert!(ucq.iter().any(|b| b.atoms[0].0[1] == em
            && b.atoms[0].0[2] == b.head[0]
            && b.atoms[0].0[0].is_var()));
    }

    #[test]
    fn transitive_chain_via_fixpoint() {
        // c1 ⊑ c2 ⊑ c3: querying c3 reaches c1 through repeated rule 1.
        let mut dict = Dictionary::new();
        let vocab = VocabIds::intern(&mut dict);
        let q = parse_query("q(X) :- t(X, rdf:type, c3)", &mut dict).unwrap();
        let c1 = dict.intern_uri("c1");
        let c2 = dict.intern_uri("c2");
        let c3 = dict.lookup_uri("c3").unwrap();
        let mut schema = Schema::new();
        schema.add(SchemaStatement::SubClassOf(c1, c2));
        schema.add(SchemaStatement::SubClassOf(c2, c3));
        let ucq = reformulate(&q.query, &schema, &vocab);
        assert_eq!(ucq.len(), 3);
    }

    #[test]
    fn multi_atom_queries_expand_independently() {
        let mut f = section_4_3_fixture();
        let q = parse_query(
            "q(X1, X2) :- t(X1, rdf:type, picture), t(X1, isLocatIn, X2)",
            &mut f.dict,
        )
        .unwrap();
        let ucq = reformulate(&q.query, &f.schema, &f.vocab);
        // 2 variants of the class atom × 2 variants of the property atom.
        assert_eq!(ucq.len(), 4);
    }

    #[test]
    fn rule5_binds_class_variable() {
        let mut f = section_4_3_fixture();
        let q = parse_query("q(X, C) :- t(X, rdf:type, C)", &mut f.dict).unwrap();
        let ucq = reformulate(&q.query, &f.schema, &f.vocab);
        // Original + C∈{painting, picture}; the painting grounding also
        // re-derives picture's subclass — but that equals the painting
        // grounding itself, so: q, q[C/painting], q[C/picture],
        // q[C/picture] with body painting (head picture) — 4 in total.
        assert_eq!(ucq.len(), 4);
        // Every grounded branch must carry the binding in the head.
        for b in ucq.iter().skip(1) {
            assert!(b.head[1].as_const().is_some());
        }
    }

    #[test]
    fn empty_schema_is_identity() {
        let mut dict = Dictionary::new();
        let vocab = VocabIds::intern(&mut dict);
        let q = parse_query("q(X, Y, P) :- t(X, P, Y)", &mut dict).unwrap();
        let ucq = reformulate(&q.query, &Schema::new(), &vocab);
        assert_eq!(ucq.len(), 1);
    }

    #[test]
    fn limit_is_enforced() {
        let mut dict = Dictionary::new();
        let vocab = VocabIds::intern(&mut dict);
        let q = parse_query("q(X, P) :- t(X, P, Y)", &mut dict).unwrap();
        let mut schema = Schema::new();
        for i in 0..20 {
            let p1 = dict.intern_uri(&format!("p{i}"));
            let p2 = dict.intern_uri(&format!("q{i}"));
            schema.add(SchemaStatement::SubPropertyOf(p1, p2));
        }
        let res = reformulate_with_limit(&q.query, &schema, &vocab, ReformLimit { max_queries: 5 });
        assert!(res.is_err());
        assert_eq!(res.unwrap_err().len(), 5);
    }

    #[test]
    fn theorem_4_1_bound_holds() {
        let mut f = section_4_3_fixture();
        let q = parse_query(
            "q(X1, X2) :- t(X1, X2, picture), t(X1, rdf:type, C)",
            &mut f.dict,
        )
        .unwrap();
        let ucq = reformulate(&q.query, &f.schema, &f.vocab);
        let bound = theorem_4_1_bound(f.schema.len(), q.query.atoms.len());
        assert!((ucq.len() as u128) <= bound);
    }

    #[test]
    fn reformulate_atom_projects_all_vars() {
        let f = section_4_3_fixture();
        let picture = f.dict.lookup_uri("picture").unwrap();
        let atom = Atom::new(Var(0), Var(1), picture);
        let ucq = reformulate_atom(&atom, &f.schema, &f.vocab);
        assert_eq!(ucq.len(), 6); // same as table2_q4
        assert_eq!(ucq.branches()[0].head.len(), 2);
    }
}
