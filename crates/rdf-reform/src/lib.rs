//! # rdf-reform
//!
//! Query reformulation w.r.t. an RDF Schema — **Algorithm 1** of *View
//! Selection in Semantic Web Databases* (Goasdoué et al., VLDB 2011),
//! with the six backward rules of its Figure 2:
//!
//! ```text
//! (1) t(s, rdf:type, c1) ⇒ t(s, rdf:type, c2)   if c1 ⊑ c2 ∈ S
//! (2) t(s, p1, o)        ⇒ t(s, p2, o)          if p1 ⊑p p2 ∈ S
//! (3) t(s, p, X)         ⇒ t(s, rdf:type, c)    if p domain c ∈ S
//! (4) t(X, p, o)         ⇒ t(o, rdf:type, c)    if p range c ∈ S
//! (5) t(s, rdf:type, ci) ⇒ t(s, rdf:type, X)    for any class ci of S
//! (6) t(s, pi, o)        ⇒ t(s, X, o)           for any property pi of S,
//!                                               and rdf:type
//! ```
//!
//! `reformulate(q, S)` returns a union of conjunctive queries `ucq` such
//! that for any database `D`:
//! `evaluate(q, saturate(D, S)) = evaluate(ucq, D)` (Theorem 4.2) — the
//! reformulation-based route to complete answers without touching the
//! database. The algorithm extends prior DL-fragment reformulation by
//! supporting atoms with *variable* classes and properties
//! (`t(s, rdf:type, X)`, `t(s, X, o)`), which is why rules 5 and 6 bind the
//! variable throughout the whole query (σ in the paper) — including the
//! head, so reformulated heads may contain constants (Table 2).
//!
//! ```
//! use rdf_model::Dictionary;
//! use rdf_query::parser::parse_query;
//! use rdf_schema::{Schema, SchemaStatement, VocabIds};
//! use rdf_reform::reformulate;
//!
//! let mut dict = Dictionary::new();
//! let vocab = VocabIds::intern(&mut dict);
//! let q = parse_query("q(X1) :- t(X1, rdf:type, picture)", &mut dict).unwrap();
//! let painting = dict.lookup_uri("painting");
//!
//! let mut schema = Schema::new();
//! let mut d2 = dict.clone();
//! let painting = d2.intern_uri("painting");
//! let picture = d2.lookup_uri("picture").unwrap();
//! schema.add(SchemaStatement::SubClassOf(painting, picture));
//!
//! let ucq = reformulate(&q.query, &schema, &vocab);
//! assert_eq!(ucq.len(), 2); // the original + the painting variant
//! ```

mod reformulate;

pub use reformulate::{
    reformulate, reformulate_atom, reformulate_with_limit, theorem_4_1_bound, ReformLimit,
};

#[cfg(test)]
mod tests {
    // Integration-style tests live in `reformulate.rs` and in the workspace
    // `tests/` directory (Theorem 4.2 equivalence against saturation).
}
