//! Post-reformulation statistics (Section 4.3).
//!
//! To account for implicit triples *without* saturating the database and
//! *without* reformulating the workload, the paper reflects entailment into
//! the statistics: each view atom `vᵢ` is reformulated into a union of
//! atoms `Reformulate(vᵢ, S)`, and `|vᵢ|` is replaced by
//! `|Reformulate(vᵢ, S)|` in every cost formula. "This results in having
//! the same statistics as if the database was saturated", so the search
//! finds the same best state as the saturation approach.

use rdf_model::{Dictionary, FxHashSet, Id, StorePattern, TripleStore};
use rdf_query::{ConjunctiveQuery, QTerm, UnionQuery};
use rdf_schema::{Schema, VocabIds};

use crate::catalog::{AtomKey, StatsCatalog};
use crate::collector::relaxations_of;

/// Evaluates a union of single-atom queries over the (non-saturated) store
/// and counts the distinct answer tuples — `|Reformulate(vᵢ, S)|`.
///
/// Branch heads may contain constants (rule 5/6 bindings); those constants
/// participate in the answer tuples, which is what makes the union count
/// equal the saturated count of the original atom.
pub fn reformulated_union_count(store: &TripleStore, ucq: &UnionQuery) -> u64 {
    let mut seen: FxHashSet<Vec<Id>> = FxHashSet::default();
    for branch in ucq.branches() {
        count_branch(store, branch, &mut seen);
    }
    seen.len() as u64
}

fn count_branch(store: &TripleStore, q: &ConjunctiveQuery, seen: &mut FxHashSet<Vec<Id>>) {
    debug_assert_eq!(
        q.atoms.len(),
        1,
        "post-reformulation atoms are 1-atom queries"
    );
    let atom = &q.atoms[0];
    let [s, p, o] = *atom.terms();
    let pat = StorePattern::new(s.as_const(), p.as_const(), o.as_const());
    let eq_sp = matches!((s, p), (QTerm::Var(a), QTerm::Var(b)) if a == b);
    let eq_so = matches!((s, o), (QTerm::Var(a), QTerm::Var(b)) if a == b);
    let eq_po = matches!((p, o), (QTerm::Var(a), QTerm::Var(b)) if a == b);
    store.for_each_match(&pat, |t| {
        if (eq_sp && t[0] != t[1]) || (eq_so && t[0] != t[2]) || (eq_po && t[1] != t[2]) {
            return;
        }
        let tuple: Vec<Id> = q
            .head
            .iter()
            .map(|term| match term {
                QTerm::Const(c) => *c,
                QTerm::Var(v) => {
                    let pos = atom
                        .terms()
                        .iter()
                        .position(|x| x == &QTerm::Var(*v))
                        // xlint: allow(X001, reason = "the head var of a safe 1-atom query occurs in its only atom")
                        .expect("safe 1-atom query");
                    t[pos]
                }
            })
            .collect();
        seen.insert(tuple);
    });
}

/// `|Reformulate(atom, S)|`: the saturated count of a single atom, computed
/// on the non-saturated store.
pub fn reformulated_atom_count(
    store: &TripleStore,
    atom: &rdf_query::Atom,
    schema: &Schema,
    vocab: &VocabIds,
) -> u64 {
    let ucq = rdf_reform::reformulate_atom(atom, schema, vocab);
    reformulated_union_count(store, &ucq)
}

/// The saturated database's triple set, computed on the non-saturated
/// store by evaluating `Reformulate(t(X, Y, Z), S)` — each entailed triple
/// surfaces as an answer tuple whose head carries the rule bindings
/// (Theorem 4.2).
pub fn saturated_triples(
    store: &TripleStore,
    schema: &Schema,
    vocab: &VocabIds,
) -> FxHashSet<[Id; 3]> {
    use rdf_query::{Atom, Var};
    let all = Atom::new(Var(0), Var(1), Var(2));
    let ucq = rdf_reform::reformulate_atom(&all, schema, vocab);
    let mut seen: FxHashSet<Vec<Id>> = FxHashSet::default();
    for branch in ucq.branches() {
        count_branch(store, branch, &mut seen);
    }
    seen.into_iter().map(|t| [t[0], t[1], t[2]]).collect()
}

/// Collects a catalog whose statistics reflect implicit triples — the
/// post-reformulation scenario. Both the per-atom counts *and* the
/// store-level statistics (size, distincts, widths) equal those of the
/// saturated database, so the search finds the same best state as the
/// saturation approach without the database ever being saturated.
pub fn collect_stats_post_reform(
    store: &TripleStore,
    dict: &Dictionary,
    queries: &[ConjunctiveQuery],
    schema: &Schema,
    vocab: &VocabIds,
) -> StatsCatalog {
    let saturated = saturated_triples(store, schema, vocab);
    let mut cat = StatsCatalog::store_level_from_triples(saturated.iter().copied(), dict);
    extend_stats_post_reform(&mut cat, store, queries, schema, vocab);
    cat
}

/// Adds the reformulated counts for `queries` that `cat` does not already
/// record. Returns how many new atom shapes were counted (see
/// [`crate::extend_stats`] for the session-reuse contract).
pub fn extend_stats_post_reform(
    cat: &mut StatsCatalog,
    store: &TripleStore,
    queries: &[ConjunctiveQuery],
    schema: &Schema,
    vocab: &VocabIds,
) -> usize {
    let mut added = 0;
    for q in queries {
        for atom in &q.atoms {
            for relaxed in relaxations_of(atom) {
                let key = AtomKey::of(&relaxed);
                if cat.key_count(&key).is_none() {
                    let n = reformulated_atom_count(store, &relaxed, schema, vocab);
                    cat.insert_count(key, n);
                    added += 1;
                }
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::collect_stats;
    use rdf_model::Dataset;
    use rdf_query::parser::parse_query;
    use rdf_schema::{saturated_copy, SchemaStatement};

    /// painting ⊑ picture; isExpIn ⊑p isLocatIn; instances of both kinds.
    fn fixture() -> (Dataset, Schema, VocabIds) {
        let mut db = Dataset::new();
        let vocab = VocabIds::intern(db.dict_mut());
        let painting = db.dict_mut().intern_uri("painting");
        let picture = db.dict_mut().intern_uri("picture");
        let is_exp_in = db.dict_mut().intern_uri("isExpIn");
        let is_locat_in = db.dict_mut().intern_uri("isLocatIn");
        let mut schema = Schema::new();
        schema.add(SchemaStatement::SubClassOf(painting, picture));
        schema.add(SchemaStatement::SubPropertyOf(is_exp_in, is_locat_in));
        for i in 0..6 {
            let x = db.dict_mut().intern_uri(&format!("item{i}"));
            let class = if i % 2 == 0 { painting } else { picture };
            db.store_mut().insert([x, vocab.rdf_type, class]);
            let museum = db.dict_mut().intern_uri(&format!("museum{}", i % 3));
            let prop = if i < 3 { is_exp_in } else { is_locat_in };
            db.store_mut().insert([x, prop, museum]);
        }
        (db, schema, vocab)
    }

    #[test]
    fn post_reform_counts_equal_saturated_counts() {
        let (db, schema, vocab) = fixture();
        let mut dict = db.dict().clone();
        let q = parse_query(
            "q(X1, X2) :- t(X1, rdf:type, picture), t(X1, isLocatIn, X2)",
            &mut dict,
        )
        .unwrap();
        let sat = saturated_copy(db.store(), &schema, &vocab);
        let cat_sat = collect_stats(&sat, &dict, std::slice::from_ref(&q.query));
        let cat_post = collect_stats_post_reform(
            db.store(),
            &dict,
            std::slice::from_ref(&q.query),
            &schema,
            &vocab,
        );
        for atom in &q.query.atoms {
            for relaxed in relaxations_of(atom) {
                assert_eq!(
                    cat_post.atom_count(&relaxed),
                    cat_sat.atom_count(&relaxed),
                    "atom {relaxed:?}"
                );
            }
        }
        assert_eq!(cat_post.dataset_size(), cat_sat.dataset_size());
    }

    #[test]
    fn saturated_count_larger_than_plain() {
        let (db, schema, vocab) = fixture();
        let mut dict = db.dict().clone();
        let q = parse_query("q(X) :- t(X, rdf:type, picture)", &mut dict).unwrap();
        let plain = collect_stats(db.store(), &dict, std::slice::from_ref(&q.query));
        let post = collect_stats_post_reform(
            db.store(),
            &dict,
            std::slice::from_ref(&q.query),
            &schema,
            &vocab,
        );
        let atom = &q.query.atoms[0];
        // Plain: 3 explicit picture instances; saturated: all 6.
        assert_eq!(plain.atom_count(atom), Some(3));
        assert_eq!(post.atom_count(atom), Some(6));
    }

    #[test]
    fn empty_schema_matches_plain_collection() {
        let (db, _schema, vocab) = fixture();
        let mut dict = db.dict().clone();
        let q = parse_query("q(X, Y) :- t(X, isLocatIn, Y)", &mut dict).unwrap();
        let plain = collect_stats(db.store(), &dict, std::slice::from_ref(&q.query));
        let post = collect_stats_post_reform(
            db.store(),
            &dict,
            std::slice::from_ref(&q.query),
            &Schema::new(),
            &vocab,
        );
        for atom in &q.query.atoms {
            assert_eq!(plain.atom_count(atom), post.atom_count(atom));
        }
    }
}
