//! # rdf-stats
//!
//! Workload-driven statistics and cardinality estimation — Section 3.3 of
//! *View Selection in Semantic Web Databases*.
//!
//! Because the workload is known up front, the paper gathers **exact**
//! counts only for the patterns the search can ever produce:
//!
//! 1. the number of triples matching each workload query atom, and
//! 2. the counts of all *relaxations* of those atoms (constants replaced by
//!    fresh variables — exactly what Selection Cut does during the search),
//!
//! plus per-column distinct-value counts, min/max, and average term widths.
//! Multi-atom view cardinalities are then estimated with the classic
//! uniformity + independence formulas of the relational literature
//! (Ramakrishnan & Gehrke [18]).
//!
//! Three catalog flavors correspond to the paper's three reasoning
//! scenarios (Section 4.3):
//!
//! * [`collect_stats`] on the original store — no implicit triples;
//! * [`collect_stats`] on a saturated store — the *database saturation*
//!   scenario;
//! * [`collect_stats_post_reform`] — the *post-reformulation* scenario:
//!   counts of `Reformulate(atom, S)` evaluated on the **non-saturated**
//!   store, which equal the saturated counts without ever materializing
//!   implicit triples (Theorem 4.2).

mod catalog;
mod collector;
mod estimator;
pub mod postreform;

pub use catalog::{AtomKey, KeySlot, StatsCatalog};
pub use collector::{collect_stats, count_atom, extend_stats, relaxations_of, stats_cover};
pub use estimator::{estimate_conjunction, CardinalityEstimator, RelAtom, RelStats};
pub use postreform::{
    collect_stats_post_reform, extend_stats_post_reform, reformulated_atom_count,
};
