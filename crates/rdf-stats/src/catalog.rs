//! The statistics catalog.

use rdf_model::{Dictionary, FxHashMap, FxHashSet, Id, TripleStore};
use rdf_query::{Atom, QTerm};

/// A renaming-invariant key for a triple atom: constants stay, variables
/// are numbered by first occurrence (so `t(X, p, X)` and `t(Y, p, Y)` share
/// a key, distinct from `t(X, p, Y)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtomKey(pub [KeySlot; 3]);

/// One slot of an [`AtomKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySlot {
    /// A constant id.
    Const(Id),
    /// A variable, numbered by first occurrence within the atom.
    Var(u8),
}

impl AtomKey {
    /// Canonicalizes an atom into its key.
    pub fn of(atom: &Atom) -> Self {
        let mut groups: Vec<rdf_query::Var> = Vec::with_capacity(3);
        let slots = atom.terms().map(|t| match t {
            QTerm::Const(c) => KeySlot::Const(c),
            QTerm::Var(v) => {
                let g = groups.iter().position(|&x| x == v).unwrap_or_else(|| {
                    groups.push(v);
                    groups.len() - 1
                });
                KeySlot::Var(g as u8)
            }
        });
        AtomKey(slots)
    }

    /// Number of constants in the key.
    pub fn const_count(&self) -> usize {
        self.0
            .iter()
            .filter(|s| matches!(s, KeySlot::Const(_)))
            .count()
    }
}

/// Collected statistics for a workload over one store (Section 3.3).
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    /// Exact triple counts per atom shape (workload atoms + relaxations).
    counts: FxHashMap<AtomKey, u64>,
    /// Total triples in the store.
    dataset_size: u64,
    /// Distinct values per column (s, p, o).
    distinct: [u64; 3],
    /// Min/max id per column, if the store is non-empty.
    min_max: Option<[(Id, Id); 3]>,
    /// Average lexical byte width per column (s, p, o).
    avg_width: [f64; 3],
}

impl StatsCatalog {
    /// Builds an empty catalog carrying only store-level statistics.
    pub fn store_level(store: &TripleStore, dict: &Dictionary) -> Self {
        let mut widths = [0.0f64; 3];
        if !store.is_empty() {
            let mut sums = [0u64; 3];
            for t in store.triples() {
                for c in 0..3 {
                    sums[c] += dict.byte_width(t[c]) as u64;
                }
            }
            for c in 0..3 {
                widths[c] = sums[c] as f64 / store.len() as f64;
            }
        }
        Self {
            counts: FxHashMap::default(),
            dataset_size: store.len() as u64,
            distinct: store.distinct_counts().map(|d| d as u64),
            min_max: store.min_max(),
            avg_width: widths,
        }
    }

    /// Builds store-level statistics from an explicit triple collection —
    /// the post-reformulation path derives the *saturated* database's
    /// statistics this way without materializing it in the store
    /// (Section 6.5: "we gather them without actually saturating the
    /// database").
    pub fn store_level_from_triples(
        triples: impl Iterator<Item = [Id; 3]>,
        dict: &Dictionary,
    ) -> Self {
        let mut distinct_sets: [FxHashSet<Id>; 3] = Default::default();
        let mut sums = [0u64; 3];
        let mut min_max: Option<[(Id, Id); 3]> = None;
        let mut count = 0u64;
        for t in triples {
            count += 1;
            let mm = min_max.get_or_insert([(t[0], t[0]), (t[1], t[1]), (t[2], t[2])]);
            for c in 0..3 {
                distinct_sets[c].insert(t[c]);
                sums[c] += dict.byte_width(t[c]) as u64;
                if t[c] < mm[c].0 {
                    mm[c].0 = t[c];
                }
                if t[c] > mm[c].1 {
                    mm[c].1 = t[c];
                }
            }
        }
        let mut widths = [0.0f64; 3];
        if count > 0 {
            for c in 0..3 {
                widths[c] = sums[c] as f64 / count as f64;
            }
        }
        Self {
            counts: FxHashMap::default(),
            dataset_size: count,
            distinct: [
                distinct_sets[0].len() as u64,
                distinct_sets[1].len() as u64,
                distinct_sets[2].len() as u64,
            ],
            min_max,
            avg_width: widths,
        }
    }

    /// Records an exact count for an atom shape.
    pub fn insert_count(&mut self, key: AtomKey, count: u64) {
        self.counts.insert(key, count);
    }

    /// Overrides the dataset size (post-reformulation uses the saturated
    /// size derived from the all-variable atom count).
    pub fn set_dataset_size(&mut self, size: u64) {
        self.dataset_size = size;
    }

    /// The exact count recorded for this atom, if collected.
    pub fn atom_count(&self, atom: &Atom) -> Option<u64> {
        self.counts.get(&AtomKey::of(atom)).copied()
    }

    /// The exact count for an atom key.
    pub fn key_count(&self, key: &AtomKey) -> Option<u64> {
        self.counts.get(key).copied()
    }

    /// Number of atom shapes recorded.
    pub fn recorded_atoms(&self) -> usize {
        self.counts.len()
    }

    /// Total triples in the underlying store (the size of any 0-constant
    /// single-variable-per-slot atom).
    pub fn dataset_size(&self) -> u64 {
        self.dataset_size
    }

    /// Distinct values in column `col` (0 = s, 1 = p, 2 = o).
    pub fn distinct(&self, col: usize) -> u64 {
        self.distinct[col]
    }

    /// Min/max ids per column.
    pub fn min_max(&self) -> Option<[(Id, Id); 3]> {
        self.min_max
    }

    /// Average byte width of column `col` values.
    pub fn avg_width(&self, col: usize) -> f64 {
        // An empty store has no widths; 8 bytes is the neutral default (an
        // encoded integer column).
        if self.avg_width[col] == 0.0 {
            8.0
        } else {
            self.avg_width[col]
        }
    }

    /// The raw per-column average widths, without the empty-store default
    /// substitution (for exact serialization round-trips).
    pub fn avg_widths_raw(&self) -> [f64; 3] {
        self.avg_width
    }

    /// Every recorded `(atom key, count)` pair, in arbitrary order.
    /// Serializers must impose their own canonical order.
    pub fn counts(&self) -> impl Iterator<Item = (&AtomKey, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }

    /// Reassembles a catalog from persisted parts (the exact fields the
    /// accessors above expose).
    pub fn from_parts(
        counts: impl IntoIterator<Item = (AtomKey, u64)>,
        dataset_size: u64,
        distinct: [u64; 3],
        min_max: Option<[(Id, Id); 3]>,
        avg_width: [f64; 3],
    ) -> Self {
        Self {
            counts: counts.into_iter().collect(),
            dataset_size,
            distinct,
            min_max,
            avg_width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_query::Var;

    #[test]
    fn atom_key_renaming_invariance() {
        let a = Atom::new(Var(3), Id(1), Var(3));
        let b = Atom::new(Var(7), Id(1), Var(7));
        let c = Atom::new(Var(1), Id(1), Var(2));
        assert_eq!(AtomKey::of(&a), AtomKey::of(&b));
        assert_ne!(AtomKey::of(&a), AtomKey::of(&c));
        assert_eq!(AtomKey::of(&a).const_count(), 1);
    }

    #[test]
    fn store_level_stats() {
        use rdf_model::{Dataset, Term};
        let mut db = Dataset::new();
        db.insert_terms(Term::uri("aa"), Term::uri("pppp"), Term::literal("x"));
        db.insert_terms(Term::uri("bb"), Term::uri("pppp"), Term::literal("y"));
        let cat = StatsCatalog::store_level(db.store(), db.dict());
        assert_eq!(cat.dataset_size(), 2);
        assert_eq!(cat.distinct(0), 2);
        assert_eq!(cat.distinct(1), 1);
        assert!((cat.avg_width(0) - 2.0).abs() < 1e-9);
        assert!((cat.avg_width(1) - 4.0).abs() < 1e-9);
        assert!((cat.avg_width(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_parts_round_trips() {
        use rdf_model::{Dataset, Term};
        let mut db = Dataset::new();
        db.insert_terms(Term::uri("aa"), Term::uri("p"), Term::literal("x"));
        let mut cat = StatsCatalog::store_level(db.store(), db.dict());
        cat.insert_count(AtomKey::of(&Atom::new(Var(0), Id(1), Var(1))), 17);
        let parts: Vec<(AtomKey, u64)> = cat.counts().map(|(k, c)| (*k, c)).collect();
        let rebuilt = StatsCatalog::from_parts(
            parts,
            cat.dataset_size(),
            [cat.distinct(0), cat.distinct(1), cat.distinct(2)],
            cat.min_max(),
            cat.avg_widths_raw(),
        );
        assert_eq!(rebuilt.dataset_size(), cat.dataset_size());
        assert_eq!(rebuilt.recorded_atoms(), 1);
        assert_eq!(
            rebuilt.key_count(&AtomKey::of(&Atom::new(Var(5), Id(1), Var(9)))),
            Some(17)
        );
        assert_eq!(rebuilt.min_max(), cat.min_max());
        assert_eq!(rebuilt.avg_widths_raw(), cat.avg_widths_raw());
    }

    #[test]
    fn empty_store_defaults() {
        let store = TripleStore::new();
        let dict = Dictionary::new();
        let cat = StatsCatalog::store_level(&store, &dict);
        assert_eq!(cat.dataset_size(), 0);
        assert_eq!(cat.avg_width(0), 8.0);
        assert!(cat.min_max().is_none());
    }
}
