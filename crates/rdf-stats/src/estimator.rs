//! Cardinality estimation under uniformity and independence.
//!
//! Section 3.3: "We assume that values in each triple table column are
//! uniformly distributed, and that values of different columns are
//! independently distributed. […] we compute |v|ǫ based on the exact counts
//! |vi| and the above assumptions and statistics, applying known relational
//! formulas [18]."
//!
//! The formulas are the System-R classics:
//!
//! * equi-join on columns `a`, `b`: reduction factor `1 / max(d(a), d(b))`;
//! * selection `col = const`: reduction factor `1 / d(col)`;
//!
//! where `d(·)` is the distinct-value count. Triple-table atoms are special:
//! their cardinalities (with their constants and intra-atom equalities) were
//! counted **exactly** by the collector, so the estimator must not apply
//! selectivities for them again — the [`RelAtom::baked`] flag captures this.

use rdf_model::{FxHashMap, Id};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, Var};

use crate::catalog::StatsCatalog;

/// Statistics of one relation (a triple-table atom or a view).
#[derive(Debug, Clone, PartialEq)]
pub struct RelStats {
    /// Estimated (or exact) tuple count.
    pub card: f64,
    /// Estimated distinct values per column.
    pub distinct: Vec<f64>,
}

impl RelStats {
    /// Distinct count of a column, floored at 1 to keep divisions sane.
    pub fn d(&self, col: usize) -> f64 {
        self.distinct[col].max(1.0)
    }
}

/// One conjunct of a conjunction to estimate.
#[derive(Debug, Clone)]
pub struct RelAtom {
    /// Relation statistics.
    pub stats: RelStats,
    /// Argument terms, one per relation column.
    pub args: Vec<QTerm>,
    /// Whether constants and intra-atom variable equalities are already
    /// reflected in `stats.card` (true for collector-counted triple atoms).
    pub baked: bool,
}

/// Estimates the result cardinality of a conjunction of relation atoms
/// joined by shared variables.
pub fn estimate_conjunction(atoms: &[RelAtom]) -> f64 {
    if atoms.is_empty() {
        return 0.0;
    }
    let mut card: f64 = 1.0;
    // (relation index, column, distinct) occurrences per variable.
    let mut occurrences: FxHashMap<Var, Vec<(usize, f64)>> = FxHashMap::default();
    for (ri, atom) in atoms.iter().enumerate() {
        card *= atom.stats.card;
        let mut seen_here: FxHashMap<Var, usize> = FxHashMap::default();
        for (col, term) in atom.args.iter().enumerate() {
            match term {
                QTerm::Const(_) => {
                    if !atom.baked {
                        card /= atom.stats.d(col);
                    }
                }
                QTerm::Var(v) => {
                    let prior_here = seen_here.get(v).copied();
                    match prior_here {
                        Some(_) if atom.baked => {
                            // Intra-atom equality already counted exactly.
                        }
                        _ => {
                            // Every occurrence (intra- and cross-atom)
                            // joins through the same symmetric pool below,
                            // so the estimate does not depend on column or
                            // atom order — a requirement for parallel
                            // search runs to agree on state costs.
                            occurrences
                                .entry(*v)
                                .or_default()
                                .push((ri, atom.stats.d(col)));
                        }
                    }
                    seen_here.entry(*v).or_insert(col);
                }
            }
        }
    }
    // Cross-relation joins, as a left-deep chain: each equi-join step
    // divides by max(d_running, d_next); the joined result's distinct
    // count for the variable is min(d_running, d_next). Anchoring on the
    // running minimum (not the first occurrence) keeps the estimate
    // monotone when an atom is relaxed — which the paper's "SC always
    // increases the state cost" law depends on.
    for occs in occurrences.values() {
        let mut running = occs[0].1;
        for &(_, d) in &occs[1..] {
            card /= running.max(d);
            running = running.min(d);
        }
    }
    card.max(0.0)
}

/// Cardinality estimation for queries, views and view columns, backed by a
/// [`StatsCatalog`].
#[derive(Debug, Clone, Copy)]
pub struct CardinalityEstimator<'a> {
    cat: &'a StatsCatalog,
}

impl<'a> CardinalityEstimator<'a> {
    /// Wraps a catalog.
    pub fn new(cat: &'a StatsCatalog) -> Self {
        Self { cat }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &'a StatsCatalog {
        self.cat
    }

    /// Statistics of one triple-table atom: exact count when collected,
    /// uniform-selectivity fallback otherwise.
    pub fn atom_stats(&self, atom: &Atom) -> RelStats {
        let card = match self.cat.atom_count(atom) {
            Some(n) => n as f64,
            None => {
                // Fallback for shapes outside the collected workload:
                // dataset size scaled by 1/d per constant and intra-atom
                // equality.
                let mut card = self.cat.dataset_size() as f64;
                let mut seen: Vec<Var> = Vec::new();
                for (col, term) in atom.terms().iter().enumerate() {
                    match term {
                        QTerm::Const(_) => card /= (self.cat.distinct(col) as f64).max(1.0),
                        QTerm::Var(v) => {
                            if seen.contains(v) {
                                card /= (self.cat.distinct(col) as f64).max(1.0);
                            } else {
                                seen.push(*v);
                            }
                        }
                    }
                }
                card
            }
        };
        let distinct = (0..3)
            .map(|col| match atom.terms()[col] {
                QTerm::Const(_) => 1.0,
                QTerm::Var(_) => (self.cat.distinct(col) as f64).min(card).max(1.0),
            })
            .collect();
        RelStats { card, distinct }
    }

    /// Estimated cardinality of a conjunctive query body over the triple
    /// table — `|v|ǫ` of Section 3.3.
    pub fn cq_card(&self, q: &ConjunctiveQuery) -> f64 {
        let atoms: Vec<RelAtom> = q
            .atoms
            .iter()
            .map(|a| RelAtom {
                stats: self.atom_stats(a),
                args: a.terms().to_vec(),
                baked: true,
            })
            .collect();
        estimate_conjunction(&atoms)
    }

    /// Column role (0 = s, 1 = p, 2 = o) of each head term of a view: the
    /// smallest column in which the variable occurs anywhere in the body
    /// (minimum over all occurrences, so the role — and everything derived
    /// from it — is independent of the body's atom order). Constants and
    /// body-absent variables default to the object role.
    pub fn head_roles(&self, q: &ConjunctiveQuery) -> Vec<usize> {
        q.head
            .iter()
            .map(|t| match t {
                QTerm::Var(v) => q
                    .atoms
                    .iter()
                    .filter_map(|a| a.terms().iter().position(|x| x == &QTerm::Var(*v)))
                    .min()
                    .unwrap_or(2),
                QTerm::Const(_) => 2,
            })
            .collect()
    }

    /// Full relation statistics for a view: estimated cardinality plus
    /// per-head-column distinct estimates (capped by the cardinality).
    pub fn view_stats(&self, view: &ConjunctiveQuery) -> RelStats {
        let card = self.cq_card(view);
        let roles = self.head_roles(view);
        let distinct = view
            .head
            .iter()
            .zip(roles.iter())
            .map(|(t, &role)| match t {
                QTerm::Const(_) => 1.0,
                QTerm::Var(_) => (self.cat.distinct(role) as f64).min(card).max(1.0),
            })
            .collect();
        RelStats { card, distinct }
    }

    /// Average byte width of each head column of a view, by column role.
    pub fn head_widths(&self, view: &ConjunctiveQuery) -> Vec<f64> {
        self.head_roles(view)
            .into_iter()
            .map(|role| self.cat.avg_width(role))
            .collect()
    }

    /// Estimated storage footprint of a view in bytes:
    /// `|v|ǫ × Σ column widths` (Section 3.3's VSO term for one view).
    pub fn view_bytes(&self, view: &ConjunctiveQuery) -> f64 {
        let w: f64 = self.head_widths(view).iter().sum();
        self.cq_card(view) * w
    }

    /// Per-column distinct count helper.
    pub fn column_distinct(&self, col: usize) -> f64 {
        (self.cat.distinct(col) as f64).max(1.0)
    }
}

/// Convenience used in tests: id shorthand.
#[allow(dead_code)]
fn _id(i: u32) -> Id {
    Id(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::collect_stats;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;

    /// 20 persons; each works in 1 of 4 cities; each has painted 3 works.
    fn db() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..20 {
            let p = format!("person{i}");
            db.insert_terms(
                Term::uri(p.as_str()),
                Term::uri("livesIn"),
                Term::uri(format!("city{}", i % 4)),
            );
            for j in 0..3 {
                db.insert_terms(
                    Term::uri(p.as_str()),
                    Term::uri("hasPainted"),
                    Term::uri(format!("work{i}_{j}")),
                );
            }
        }
        db
    }

    #[test]
    fn one_atom_exact() {
        let mut db = db();
        let q = parse_query("q(X, Y) :- t(X, <livesIn>, Y)", db.dict_mut()).unwrap();
        let cat = collect_stats(db.store(), db.dict(), std::slice::from_ref(&q.query));
        let est = CardinalityEstimator::new(&cat);
        assert_eq!(est.cq_card(&q.query), 20.0);
    }

    #[test]
    fn join_estimate_close_to_truth() {
        let mut db = db();
        let q = parse_query(
            "q(X, Y, Z) :- t(X, <livesIn>, Y), t(X, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap();
        let cat = collect_stats(db.store(), db.dict(), std::slice::from_ref(&q.query));
        let est = CardinalityEstimator::new(&cat);
        let estimate = est.cq_card(&q.query);
        // Truth: every person has 1 city × 3 works = 60 rows. The estimate
        // divides 20×60 by max(d_s, d_s)=20 → 60. Exact here.
        assert!((estimate - 60.0).abs() < 1e-6, "estimate {estimate}");
    }

    #[test]
    fn selection_fallback_for_uncollected_atom() {
        let mut db = db();
        let q = parse_query("q(X, Y) :- t(X, <livesIn>, Y)", db.dict_mut()).unwrap();
        let cat = collect_stats(db.store(), db.dict(), std::slice::from_ref(&q.query));
        let est = CardinalityEstimator::new(&cat);
        // An atom never collected: t(X, Y, city0) — fallback kicks in.
        let city0 = db.dict().lookup_uri("city0").unwrap();
        let atom = Atom::new(Var(0), Var(1), city0);
        let st = est.atom_stats(&atom);
        assert!(st.card > 0.0);
        assert!(st.card <= cat.dataset_size() as f64);
    }

    #[test]
    fn view_stats_caps_distincts() {
        let mut db = db();
        let q = parse_query("q(X) :- t(X, <livesIn>, <city0>)", db.dict_mut()).unwrap();
        let cat = collect_stats(db.store(), db.dict(), std::slice::from_ref(&q.query));
        let est = CardinalityEstimator::new(&cat);
        let st = est.view_stats(&q.query);
        assert_eq!(st.card, 5.0); // persons 0,4,8,12,16
        assert!(st.distinct[0] <= 5.0);
    }

    #[test]
    fn widths_follow_roles() {
        let mut db = db();
        let q = parse_query("q(Y, X) :- t(X, <livesIn>, Y)", db.dict_mut()).unwrap();
        let cat = collect_stats(db.store(), db.dict(), std::slice::from_ref(&q.query));
        let est = CardinalityEstimator::new(&cat);
        let w = est.head_widths(&q.query);
        // Y is an object (city names, 5 chars); X a subject (~8 chars).
        assert!(w[0] < w[1]);
        assert!(est.view_bytes(&q.query) > 0.0);
    }

    #[test]
    fn unbaked_relation_selectivities() {
        // A view with 100 rows, 10 distinct values in col 0; selecting
        // col0 = const should give ~10 rows.
        let rel = RelAtom {
            stats: RelStats {
                card: 100.0,
                distinct: vec![10.0, 50.0],
            },
            args: vec![QTerm::Const(Id(1)), QTerm::Var(Var(0))],
            baked: false,
        };
        let est = estimate_conjunction(&[rel]);
        assert!((est - 10.0).abs() < 1e-9);
    }

    #[test]
    fn join_of_two_views() {
        let a = RelAtom {
            stats: RelStats {
                card: 100.0,
                distinct: vec![20.0, 100.0],
            },
            args: vec![QTerm::Var(Var(0)), QTerm::Var(Var(1))],
            baked: false,
        };
        let b = RelAtom {
            stats: RelStats {
                card: 50.0,
                distinct: vec![25.0, 50.0],
            },
            args: vec![QTerm::Var(Var(0)), QTerm::Var(Var(2))],
            baked: false,
        };
        // 100 × 50 / max(20, 25) = 200.
        assert!((estimate_conjunction(&[a, b]) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_conjunction_is_zero() {
        assert_eq!(estimate_conjunction(&[]), 0.0);
    }

    #[test]
    fn fallback_intra_atom_equality() {
        // An uncollected atom with a repeated variable: the fallback
        // divides by the column's distinct count for the equality.
        let mut db = db();
        let q = parse_query("q(X, Y) :- t(X, <livesIn>, Y)", db.dict_mut()).unwrap();
        let cat = collect_stats(db.store(), db.dict(), std::slice::from_ref(&q.query));
        let est = CardinalityEstimator::new(&cat);
        let plain = est.atom_stats(&Atom::new(Var(0), Var(1), Var(2))).card;
        let repeated = est.atom_stats(&Atom::new(Var(0), Var(1), Var(0))).card;
        assert!(repeated < plain, "{repeated} !< {plain}");
        assert!(repeated > 0.0);
    }

    #[test]
    fn running_min_monotone_under_relaxation() {
        // Growing one relation's cardinality (and distincts) must never
        // shrink the join estimate — the property behind the paper's "SC
        // always increases cost" law.
        let base = |card: f64, d: f64| RelAtom {
            stats: RelStats {
                card,
                distinct: vec![d, card.min(50.0)],
            },
            args: vec![QTerm::Var(Var(0)), QTerm::Var(Var(1))],
            baked: false,
        };
        let other = RelAtom {
            stats: RelStats {
                card: 40.0,
                distinct: vec![20.0, 40.0],
            },
            args: vec![QTerm::Var(Var(0)), QTerm::Var(Var(2))],
            baked: false,
        };
        let mut prev = 0.0;
        for k in 1..=8 {
            let card = 2.0 * k as f64;
            let est = estimate_conjunction(&[base(card, card.min(30.0)), other.clone()]);
            assert!(est >= prev - 1e-9, "estimate dropped: {est} < {prev}");
            prev = est;
        }
    }
}
