//! Workload-driven statistics collection.
//!
//! "Since the workload is known, we gather only the statistics needed for
//! this workload: (i) we count the triples matching each of the query atoms
//! (ii) we also count the triples matching all relaxations of these atoms,
//! obtained by removing constants (as SC does during the search)."
//! — Section 3.3.

use rdf_model::{Dictionary, StorePattern, TripleStore};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, Var};

use crate::catalog::{AtomKey, StatsCatalog};

/// Exact number of triples matching `atom` (honoring repeated variables,
/// e.g. `t(X, p, X)` counts only self-loops).
pub fn count_atom(store: &TripleStore, atom: &Atom) -> u64 {
    let [s, p, o] = atom.terms();
    let pat = StorePattern::new(s.as_const(), p.as_const(), o.as_const());
    // Intra-atom variable repetitions need post-filtering.
    let eq_sp = matches!((s, p), (QTerm::Var(a), QTerm::Var(b)) if a == b);
    let eq_so = matches!((s, o), (QTerm::Var(a), QTerm::Var(b)) if a == b);
    let eq_po = matches!((p, o), (QTerm::Var(a), QTerm::Var(b)) if a == b);
    if !(eq_sp || eq_so || eq_po) {
        return store.match_count(&pat) as u64;
    }
    let mut n = 0u64;
    store.for_each_match(&pat, |t| {
        if (!eq_sp || t[0] == t[1]) && (!eq_so || t[0] == t[2]) && (!eq_po || t[1] == t[2]) {
            n += 1;
        }
    });
    n
}

/// All relaxations of an atom: every subset of its constants replaced by
/// fresh, pairwise-distinct variables. The atom itself is the empty
/// relaxation and comes first.
pub fn relaxations_of(atom: &Atom) -> Vec<Atom> {
    let const_positions: Vec<usize> = atom
        .terms()
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_var())
        .map(|(i, _)| i)
        .collect();
    let max_var = atom.vars().map(|v| v.0).max().map_or(0, |m| m + 1);
    let mut out = Vec::with_capacity(1 << const_positions.len());
    for mask in 0..(1u8 << const_positions.len()) {
        let mut terms = *atom.terms();
        let mut next = max_var;
        for (bit, &pos) in const_positions.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                terms[pos] = QTerm::Var(Var(next));
                next += 1;
            }
        }
        out.push(Atom(terms));
    }
    out
}

/// Collects the full catalog for a workload: store-level statistics plus
/// exact counts of every query atom and every relaxation thereof.
pub fn collect_stats(
    store: &TripleStore,
    dict: &Dictionary,
    queries: &[ConjunctiveQuery],
) -> StatsCatalog {
    let mut cat = StatsCatalog::store_level(store, dict);
    extend_stats(&mut cat, store, queries);
    cat
}

/// Whether `cat` already records every atom shape (including relaxations)
/// that `queries` can need — the condition under which [`extend_stats`] /
/// [`crate::extend_stats_post_reform`] would be a no-op. Kept here, next
/// to the insertion loops, so the enumeration cannot drift from them.
pub fn stats_cover(cat: &StatsCatalog, queries: &[ConjunctiveQuery]) -> bool {
    queries.iter().all(|q| {
        q.atoms.iter().all(|atom| {
            relaxations_of(atom)
                .iter()
                .all(|r| cat.key_count(&AtomKey::of(r)).is_some())
        })
    })
}

/// Adds the counts for `queries` (atoms + relaxations) that `cat` does not
/// already record, counting against `store`. Returns how many new atom
/// shapes were actually counted — zero means the catalog already covered
/// the workload and no store work happened, which is what lets a long-lived
/// advisor session skip re-collection across `recommend` calls.
pub fn extend_stats(
    cat: &mut StatsCatalog,
    store: &TripleStore,
    queries: &[ConjunctiveQuery],
) -> usize {
    let mut added = 0;
    for q in queries {
        for atom in &q.atoms {
            for relaxed in relaxations_of(atom) {
                let key = AtomKey::of(&relaxed);
                if cat.key_count(&key).is_none() {
                    cat.insert_count(key, count_atom(store, &relaxed));
                    added += 1;
                }
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dataset, Id, Term};

    fn db() -> Dataset {
        let mut db = Dataset::new();
        let t = |db: &mut Dataset, s: &str, p: &str, o: &str| {
            db.insert_terms(Term::uri(s), Term::uri(p), Term::uri(o));
        };
        t(&mut db, "a", "p", "b");
        t(&mut db, "a", "p", "c");
        t(&mut db, "b", "q", "b");
        t(&mut db, "c", "p", "c");
        db
    }

    #[test]
    fn count_atom_with_constants() {
        let mut db = db();
        let p = db.dict_mut().intern_uri("p");
        let a = db.dict_mut().intern_uri("a");
        assert_eq!(count_atom(db.store(), &Atom::new(Var(0), p, Var(1))), 3);
        assert_eq!(count_atom(db.store(), &Atom::new(a, p, Var(0))), 2);
        assert_eq!(
            count_atom(db.store(), &Atom::new(Var(0), Var(1), Var(2))),
            4
        );
    }

    #[test]
    fn count_atom_with_repeated_vars() {
        let mut db = db();
        let p = db.dict_mut().intern_uri("p");
        let q = db.dict_mut().intern_uri("q");
        // Self loops s = o: (b,q,b) and (c,p,c).
        assert_eq!(
            count_atom(db.store(), &Atom::new(Var(0), Var(1), Var(0))),
            2
        );
        assert_eq!(count_atom(db.store(), &Atom::new(Var(0), p, Var(0))), 1);
        assert_eq!(count_atom(db.store(), &Atom::new(Var(0), q, Var(0))), 1);
    }

    #[test]
    fn relaxations_enumerated() {
        let atom = Atom::new(Var(0), Id(1), Id(2));
        let rs = relaxations_of(&atom);
        assert_eq!(rs.len(), 4); // itself, drop p, drop o, drop both
        assert_eq!(rs[0], atom);
        // The full relaxation has three distinct variables.
        let full = rs.last().unwrap();
        let vars: Vec<Var> = full.vars().collect();
        assert_eq!(vars.len(), 3);
        let set: std::collections::HashSet<Var> = vars.into_iter().collect();
        assert_eq!(set.len(), 3, "fresh vars must be pairwise distinct");
    }

    #[test]
    fn relaxations_preserve_repetition() {
        // Relaxing t(X, p, X) keeps the s=o equality.
        let atom = Atom::new(Var(0), Id(1), Var(0));
        let rs = relaxations_of(&atom);
        assert_eq!(rs.len(), 2);
        let relaxed = rs[1];
        assert_eq!(relaxed.0[0], relaxed.0[2]);
        assert!(relaxed.0[1].is_var());
    }

    #[test]
    fn collect_covers_workload() {
        use rdf_query::parser::parse_query;
        let mut db = db();
        let q = parse_query("q(X) :- t(X, <p>, <b>), t(X, <q>, Y)", db.dict_mut()).unwrap();
        let cat = collect_stats(db.store(), db.dict(), std::slice::from_ref(&q.query));
        // Atom 1 has 2 constants → 4 shapes; atom 2 has 1 constant → 2
        // shapes; the all-var shape is shared.
        assert_eq!(cat.recorded_atoms(), 5);
        for atom in &q.query.atoms {
            assert!(cat.atom_count(atom).is_some());
        }
        // Spot-check: t(X, p, b) matches exactly 1 triple.
        assert_eq!(cat.atom_count(&q.query.atoms[0]), Some(1));
        assert_eq!(cat.dataset_size(), 4);
    }
}
