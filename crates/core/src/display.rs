//! Human-readable rendering of views, rewritings and states.

use rdf_model::Dictionary;
use rdf_query::display::term_to_string;

use crate::state::{Rewriting, State, View};

/// Renders a view as `v3(X0, X1) :- t(X0, <p>, X1), …`.
pub fn view_to_string(view: &View, dict: &Dictionary) -> String {
    rdf_query::display::query_to_string(&view.id.to_string(), &view.as_query(), dict)
}

/// Renders a rewriting as `q0(X, Z) = v1(X, u0), v2(u0, Z, <c>)` — the
/// conjunctive-over-views form in which constants are selections and
/// repeated variables joins.
pub fn rewriting_to_string(r: &Rewriting, dict: &Dictionary) -> String {
    let head: Vec<String> = r.head.iter().map(|t| term_to_string(t, dict)).collect();
    let atoms: Vec<String> = r
        .atoms
        .iter()
        .map(|a| {
            let args: Vec<String> = a.args.iter().map(|t| term_to_string(t, dict)).collect();
            format!("{}({})", a.view, args.join(", "))
        })
        .collect();
    format!(
        "q{}({}) = {}",
        r.query_index,
        head.join(", "),
        atoms.join(" ⋈ ")
    )
}

/// Renders a whole state: views first, then rewritings.
pub fn state_to_string(state: &State, dict: &Dictionary) -> String {
    let mut out = String::new();
    for v in state.views() {
        out.push_str(&view_to_string(v, dict));
        out.push('\n');
    }
    for r in state.rewritings() {
        out.push_str(&rewriting_to_string(r, dict));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_query::parser::parse_query;

    #[test]
    fn renders_initial_state() {
        let mut dict = Dictionary::new();
        let q = parse_query("q(X) :- t(X, <p>, <c>)", &mut dict)
            .unwrap()
            .query;
        let s = State::initial(&[q]);
        let text = state_to_string(&s, &dict);
        assert!(text.contains("v0(X0) :- t(X0, <p>, <c>)"), "{text}");
        assert!(text.contains("q0(X0) = v0(X0)"), "{text}");
    }

    #[test]
    fn renders_selection_constants_in_rewritings() {
        use crate::transitions::{apply, enumerate, TransitionConfig, TransitionKind};
        let mut dict = Dictionary::new();
        let q = parse_query("q(X) :- t(X, <p>, <c>)", &mut dict)
            .unwrap()
            .query;
        let s0 = State::initial(&[q]);
        let sc = &enumerate(&s0, TransitionKind::Sc, &TransitionConfig::default())[1];
        let s1 = apply(&s0, sc);
        let text = state_to_string(&s1, &dict);
        // The rewriting pins the cut constant as an argument.
        assert!(text.contains("<c>)"), "{text}");
    }
}
