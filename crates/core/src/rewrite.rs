//! View-based rewriting of **ad-hoc** conjunctive queries — the
//! production-facing half of view selection (RDFViewS serves the tuned
//! workload; a real front end must also answer queries that arrive after
//! tuning).
//!
//! Given a query `q` and the deployed views, the planner computes either a
//! **complete views-only rewriting** (every atom of `q` answered from view
//! tables) or a **hybrid plan** mixing view scans with base-store scans for
//! the atoms no view covers. The algorithm is a bucket/MiniCon-style cover
//! search:
//!
//! 1. **Candidates** — every homomorphic embedding of a view body into
//!    `q`'s body yields a candidate view application: its arguments are the
//!    images of the view's head variables, and it covers the image atoms.
//!    Candidates satisfying the MiniCon property (every existential of the
//!    view maps injectively to a query variable that is needed nowhere
//!    outside the covered atoms) are preferred; the rest are kept as a
//!    fallback, since the final equivalence check is the real arbiter.
//! 2. **Cover search** — a most-constrained-atom-first backtracking search
//!    combines candidates into complete covers; each complete cover is
//!    **verified** by unfolding it back to a query over the triple table
//!    ([`unfold_plan`]) and checking Chandra–Merlin equivalence with `q`
//!    (Definition 2.2 — the same yardstick the view-selection search uses).
//! 3. **Hybrid** — when no complete cover verifies, candidates are added
//!    greedily (largest coverage first) as long as the mixed unfolding
//!    stays equivalent to `q` and the plan stays cross-product-free;
//!    uncovered atoms remain base-store scans.
//!
//! The planner assumes `q` is **minimized** (Definition 2.1 assumes minimal
//! queries; `rdf_query::minimize` is cheap) — callers should minimize and
//! normalize first, as the pipeline does for workload queries.

use rdf_model::{FxHashMap, FxHashSet};
use rdf_query::containment::equivalent;
use rdf_query::{Atom, ConjunctiveQuery, QTerm, Var};

use crate::state::{RewAtom, View, ViewId};

/// One atom of an executable plan: a deployed-view scan or a base-store
/// scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanAtom {
    /// A scan of a materialized view (constants in `args` are selections,
    /// repeated variables joins — exactly like a state rewriting atom).
    View(RewAtom),
    /// A triple-table atom answered from the base store.
    Base(Atom),
}

impl PlanAtom {
    /// The variables this atom binds (view-scan arguments or triple terms).
    fn vars(&self) -> Vec<Var> {
        match self {
            PlanAtom::View(ra) => ra.args.iter().filter_map(|t| t.as_var()).collect(),
            PlanAtom::Base(a) => a.vars().collect(),
        }
    }
}

/// An executable rewriting of one conjunctive query over deployed views
/// (and, for hybrid plans, the base store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewritePlan {
    /// The query head, in the query's variable space.
    pub head: Vec<QTerm>,
    /// The plan atoms.
    pub atoms: Vec<PlanAtom>,
}

impl RewritePlan {
    /// Whether every atom is answered from the views.
    pub fn is_views_only(&self) -> bool {
        self.atoms.iter().all(|a| matches!(a, PlanAtom::View(_)))
    }

    /// Number of base-store atoms (0 for a views-only plan).
    pub fn residual_atoms(&self) -> usize {
        self.atoms
            .iter()
            .filter(|a| matches!(a, PlanAtom::Base(_)))
            .count()
    }

    /// Number of view-scan atoms.
    pub fn view_atoms(&self) -> usize {
        self.atoms.len() - self.residual_atoms()
    }

    /// The distinct views this plan scans, in id order.
    pub fn views_used(&self) -> Vec<ViewId> {
        let mut ids: Vec<ViewId> = self
            .atoms
            .iter()
            .filter_map(|a| match a {
                PlanAtom::View(ra) => Some(ra.view),
                PlanAtom::Base(_) => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// The trivial plan: every atom a base-store scan (what a deployment
/// without useful views falls back to).
pub fn base_plan(q: &ConjunctiveQuery) -> RewritePlan {
    RewritePlan {
        head: q.head.clone(),
        atoms: q.atoms.iter().map(|a| PlanAtom::Base(*a)).collect(),
    }
}

/// Unfolds a plan back into a conjunctive query over the triple table:
/// view scans are replaced by their definitions (head variables bound to
/// the scan arguments, existentials renamed fresh), base atoms kept as-is.
///
/// This is the semantic yardstick of ad-hoc planning, exactly as
/// [`crate::unfold::unfold`] is for state rewritings: a views-only plan is
/// correct iff its unfolding is `equivalent` to the planned query.
pub fn unfold_plan(views: &[View], plan: &RewritePlan) -> ConjunctiveQuery {
    let by_id: FxHashMap<ViewId, &View> = views.iter().map(|v| (v.id, v)).collect();
    let mut next_var = plan
        .head
        .iter()
        .copied()
        .chain(plan.atoms.iter().flat_map(|a| match a {
            PlanAtom::View(ra) => ra.args.clone(),
            PlanAtom::Base(a) => a.terms().to_vec(),
        }))
        .filter_map(|t| t.as_var())
        .map(|v| v.0 + 1)
        .max()
        .unwrap_or(0);
    let mut atoms = Vec::new();
    for pa in &plan.atoms {
        match pa {
            PlanAtom::Base(a) => atoms.push(*a),
            PlanAtom::View(ra) => {
                let view = by_id[&ra.view];
                let mut map: FxHashMap<Var, QTerm> = FxHashMap::default();
                for (k, &h) in view.head.iter().enumerate() {
                    map.insert(h, ra.args[k]);
                }
                for atom in &view.atoms {
                    for v in atom.vars() {
                        map.entry(v).or_insert_with(|| {
                            let t = QTerm::Var(Var(next_var));
                            next_var += 1;
                            t
                        });
                    }
                }
                for atom in &view.atoms {
                    atoms.push(atom.substitute(&map));
                }
            }
        }
    }
    ConjunctiveQuery::new(plan.head.clone(), atoms)
}

/// Number of connected components of a plan's join graph (atoms are nodes,
/// shared variables edges). A correct planner never returns a plan with
/// more components than the query it rewrites — view scans that would
/// disconnect the join graph (because the connecting variable is projected
/// out of the view head) are rejected.
pub fn plan_component_count(plan: &RewritePlan) -> usize {
    component_count(&plan.atoms.iter().map(|a| a.vars()).collect::<Vec<_>>())
}

/// Number of connected components of a query's join graph (same metric as
/// [`plan_component_count`], for comparison).
pub fn query_component_count(q: &ConjunctiveQuery) -> usize {
    component_count(
        &q.atoms
            .iter()
            .map(|a| a.vars().collect::<Vec<_>>())
            .collect::<Vec<_>>(),
    )
}

fn component_count(var_sets: &[Vec<Var>]) -> usize {
    let n = var_sets.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut first_seen: FxHashMap<Var, usize> = FxHashMap::default();
    for (i, vars) in var_sets.iter().enumerate() {
        for &v in vars {
            match first_seen.get(&v) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri] = rj;
                }
                None => {
                    first_seen.insert(v, i);
                }
            }
        }
    }
    (0..n)
        .map(|i| find(&mut parent, i))
        .collect::<FxHashSet<_>>()
        .len()
}

/// A candidate view application: one homomorphic embedding of a view body
/// into the query body.
#[derive(Debug, Clone)]
struct Candidate {
    /// Index into the planner's view slice.
    view_pos: usize,
    /// Scan arguments (images of the view's head variables).
    args: Vec<QTerm>,
    /// Sorted indices of the query atoms this application covers.
    covered: Vec<usize>,
    /// Bitmask over query atoms (the planner caps queries at 64 atoms).
    mask: u64,
    /// Whether the embedding satisfies the MiniCon property — existentials
    /// of the view map injectively to query variables that appear nowhere
    /// outside the covered atoms. Such candidates are sound by
    /// construction; the rest may still verify (redundant coverage) and
    /// are kept as a second tier.
    minicon: bool,
}

/// Safety caps for candidate enumeration and cover search; queries and
/// view sets here are small (≤ ~10 atoms), so these are generous.
const MAX_EMBEDDINGS_PER_VIEW: usize = 256;
const MAX_CANDIDATES: usize = 2048;
const MAX_COVER_NODES: usize = 20_000;
const MAX_EQUIV_CHECKS: usize = 64;

/// Hard cap on plannable query size (the cover search tracks coverage in a
/// 64-bit mask). Callers should reject larger queries up front rather than
/// rely on the planner's silent all-base degradation.
pub const MAX_QUERY_ATOMS: usize = 64;

/// Enumerates all homomorphisms of `view`'s body into `q`'s body, as
/// (variable map, per-view-atom target index) pairs.
fn embeddings(view: &View, q: &ConjunctiveQuery) -> Vec<(FxHashMap<Var, QTerm>, Vec<usize>)> {
    let mut out = Vec::new();
    let mut map: FxHashMap<Var, QTerm> = FxHashMap::default();
    let mut targets: Vec<usize> = Vec::with_capacity(view.atoms.len());
    fn go(
        view_atoms: &[Atom],
        q: &ConjunctiveQuery,
        depth: usize,
        map: &mut FxHashMap<Var, QTerm>,
        targets: &mut Vec<usize>,
        out: &mut Vec<(FxHashMap<Var, QTerm>, Vec<usize>)>,
    ) {
        if out.len() >= MAX_EMBEDDINGS_PER_VIEW {
            return;
        }
        let Some(atom) = view_atoms.get(depth) else {
            out.push((map.clone(), targets.clone()));
            return;
        };
        for (qi, target) in q.atoms.iter().enumerate() {
            let mut trail: Vec<Var> = Vec::new();
            let mut ok = true;
            for (vt, qt) in atom.terms().iter().zip(target.terms().iter()) {
                match vt {
                    QTerm::Const(c) => {
                        if QTerm::Const(*c) != *qt {
                            ok = false;
                            break;
                        }
                    }
                    QTerm::Var(v) => match map.get(v) {
                        Some(prev) => {
                            if prev != qt {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            map.insert(*v, *qt);
                            trail.push(*v);
                        }
                    },
                }
            }
            if ok {
                targets.push(qi);
                go(view_atoms, q, depth + 1, map, targets, out);
                targets.pop();
            }
            for v in trail {
                map.remove(&v);
            }
        }
    }
    go(&view.atoms, q, 0, &mut map, &mut targets, &mut out);
    out
}

/// Builds the candidate set for `q` over `views`, deduplicated and tagged
/// with the MiniCon property.
fn candidates(q: &ConjunctiveQuery, views: &[View]) -> Vec<Candidate> {
    // Which atoms each query variable occurs in, and the head variables —
    // the "needed outside the cover" test.
    let mut var_atoms: FxHashMap<Var, Vec<usize>> = FxHashMap::default();
    for (i, a) in q.atoms.iter().enumerate() {
        for v in a.vars() {
            var_atoms.entry(v).or_default().push(i);
        }
    }
    let head_vars: FxHashSet<Var> = q.head_vars().into_iter().collect();

    let mut seen: FxHashSet<(usize, Vec<QTerm>, Vec<usize>)> = FxHashSet::default();
    let mut out: Vec<Candidate> = Vec::new();
    for (view_pos, view) in views.iter().enumerate() {
        for (map, targets) in embeddings(view, q) {
            if out.len() >= MAX_CANDIDATES {
                return out;
            }
            let mut covered = targets.clone();
            covered.sort_unstable();
            covered.dedup();
            let args: Vec<QTerm> = view.head.iter().map(|h| map[h]).collect();
            if !seen.insert((view_pos, args.clone(), covered.clone())) {
                continue;
            }
            let mask = covered.iter().fold(0u64, |m, &i| m | (1 << i));
            // MiniCon property: each view existential maps injectively to
            // a query variable not needed outside the covered atoms.
            let head_set: FxHashSet<Var> = view.head.iter().copied().collect();
            let mut image_count: FxHashMap<Var, u32> = FxHashMap::default();
            for t in map.values() {
                if let QTerm::Var(x) = t {
                    *image_count.entry(*x).or_insert(0) += 1;
                }
            }
            let minicon = map.iter().all(|(u, t)| {
                if head_set.contains(u) {
                    return true;
                }
                match t {
                    QTerm::Const(_) => false,
                    QTerm::Var(x) => {
                        image_count[x] == 1
                            && !head_vars.contains(x)
                            && var_atoms[x].iter().all(|i| covered.contains(i))
                    }
                }
            });
            out.push(Candidate {
                view_pos,
                args,
                covered,
                mask,
                minicon,
            });
        }
    }
    out
}

fn assemble(
    q: &ConjunctiveQuery,
    views: &[View],
    chosen: &[&Candidate],
    covered: u64,
) -> RewritePlan {
    let mut atoms: Vec<PlanAtom> = Vec::new();
    for c in chosen {
        let pa = PlanAtom::View(RewAtom {
            view: views[c.view_pos].id,
            args: c.args.clone(),
        });
        if !atoms.contains(&pa) {
            atoms.push(pa);
        }
    }
    for (i, a) in q.atoms.iter().enumerate() {
        if covered & (1 << i) == 0 {
            atoms.push(PlanAtom::Base(*a));
        }
    }
    RewritePlan {
        head: q.head.clone(),
        atoms,
    }
}

struct CoverCtx<'a> {
    q: &'a ConjunctiveQuery,
    views: &'a [View],
    cands: &'a [Candidate],
    /// Candidate indices covering each atom, best-first.
    per_atom: Vec<Vec<usize>>,
    full: u64,
    nodes_left: usize,
    checks_left: usize,
}

fn cover_search(
    ctx: &mut CoverCtx<'_>,
    covered: u64,
    chosen: &mut Vec<usize>,
) -> Option<RewritePlan> {
    if ctx.nodes_left == 0 {
        return None;
    }
    ctx.nodes_left -= 1;
    if covered == ctx.full {
        if ctx.checks_left == 0 {
            return None;
        }
        ctx.checks_left -= 1;
        let picked: Vec<&Candidate> = chosen.iter().map(|&i| &ctx.cands[i]).collect();
        let plan = assemble(ctx.q, ctx.views, &picked, covered);
        if equivalent(&unfold_plan(ctx.views, &plan), ctx.q) {
            return Some(plan);
        }
        return None;
    }
    // Most-constrained first: the uncovered atom with fewest candidates.
    let pick = (0..ctx.q.atoms.len())
        .filter(|&i| covered & (1 << i) == 0)
        .min_by_key(|&i| ctx.per_atom[i].len())?;
    let options = ctx.per_atom[pick].clone();
    for ci in options {
        chosen.push(ci);
        if let Some(plan) = cover_search(ctx, covered | ctx.cands[ci].mask, chosen) {
            return Some(plan);
        }
        chosen.pop();
        if ctx.nodes_left == 0 || ctx.checks_left == 0 {
            return None;
        }
    }
    None
}

/// Computes a complete views-only rewriting of `q` over `views`, verified
/// equivalent ([`unfold_plan`] + Chandra–Merlin), or `None` when the cover
/// search finds none. `q` should be minimized and normalized.
pub fn rewrite_views_only(q: &ConjunctiveQuery, views: &[View]) -> Option<RewritePlan> {
    if q.atoms.is_empty() || q.atoms.len() > MAX_QUERY_ATOMS {
        return None;
    }
    let cands = candidates(q, views);
    views_only_from(q, views, &cands)
}

fn views_only_from(
    q: &ConjunctiveQuery,
    views: &[View],
    cands: &[Candidate],
) -> Option<RewritePlan> {
    let mut per_atom: Vec<Vec<usize>> = vec![Vec::new(); q.atoms.len()];
    for (ci, c) in cands.iter().enumerate() {
        for &i in &c.covered {
            per_atom[i].push(ci);
        }
    }
    // Best-first per atom: MiniCon candidates before fallbacks, larger
    // coverage before smaller (fewer scans ≈ cheaper plans, found sooner).
    for list in &mut per_atom {
        list.sort_by_key(|&ci| {
            let c = &cands[ci];
            (!c.minicon, std::cmp::Reverse(c.covered.len()))
        });
    }
    let mut ctx = CoverCtx {
        q,
        views,
        cands,
        per_atom,
        full: if q.atoms.len() == 64 {
            u64::MAX
        } else {
            (1u64 << q.atoms.len()) - 1
        },
        nodes_left: MAX_COVER_NODES,
        checks_left: MAX_EQUIV_CHECKS,
    };
    cover_search(&mut ctx, 0, &mut Vec::new())
}

/// Computes the best plan for `q` in **one pass** over one candidate
/// enumeration: a complete views-only rewriting when the cover search
/// finds one, otherwise view scans for the atoms the views can cover
/// (greedy, largest coverage first, each addition verified equivalent and
/// cross-product-free) and base-store scans for the rest. Always succeeds;
/// the worst case is the all-base plan. `q` should be minimized and
/// normalized. Check [`RewritePlan::is_views_only`] to tell the outcomes
/// apart — this is the entry point for callers that would otherwise run
/// [`rewrite_views_only`] and fall back (which would repeat the whole
/// candidate enumeration and cover search).
pub fn rewrite_best(q: &ConjunctiveQuery, views: &[View]) -> RewritePlan {
    if q.atoms.is_empty() || q.atoms.len() > MAX_QUERY_ATOMS {
        return base_plan(q);
    }
    let cands = candidates(q, views);
    if let Some(plan) = views_only_from(q, views, &cands) {
        return plan;
    }
    hybrid_from(q, views, &cands)
}

/// Computes the best hybrid plan for `q` — a thin alias of
/// [`rewrite_best`], kept for call sites that read better with the
/// "hybrid" name.
pub fn rewrite_hybrid(q: &ConjunctiveQuery, views: &[View]) -> RewritePlan {
    rewrite_best(q, views)
}

/// The greedy hybrid assembly over an existing candidate set.
fn hybrid_from(q: &ConjunctiveQuery, views: &[View], cands: &[Candidate]) -> RewritePlan {
    let base_components = query_component_count(q);
    let mut order: Vec<usize> = (0..cands.len()).filter(|&i| cands[i].minicon).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cands[i].covered.len()));
    let mut chosen: Vec<&Candidate> = Vec::new();
    let mut covered = 0u64;
    for ci in order {
        let c = &cands[ci];
        if c.mask & !covered == 0 {
            continue;
        }
        let mut tentative = chosen.clone();
        tentative.push(c);
        let plan = assemble(q, views, &tentative, covered | c.mask);
        if plan_component_count(&plan) <= base_components
            && equivalent(&unfold_plan(views, &plan), q)
        {
            chosen = tentative;
            covered |= c.mask;
        }
    }
    assemble(q, views, &chosen, covered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::State;
    use rdf_model::Dictionary;
    use rdf_query::minimize;
    use rdf_query::parser::parse_query;

    fn q(dict: &mut Dictionary, text: &str) -> ConjunctiveQuery {
        parse_query(text, dict).unwrap().query
    }

    /// Views of the initial state of a workload: one per query.
    fn views_of(workload: &[ConjunctiveQuery]) -> Vec<View> {
        State::initial(workload).views().cloned().collect()
    }

    #[test]
    fn single_atom_view_covers_specialization() {
        let mut dict = Dictionary::new();
        let views = views_of(&[q(&mut dict, "v(X, Y) :- t(X, <p>, Y)")]);
        let adhoc = minimize(&q(&mut dict, "a(X) :- t(X, <p>, <o1>)")).normalized();
        let plan = rewrite_views_only(&adhoc, &views).expect("coverable");
        assert!(plan.is_views_only());
        assert_eq!(plan.atoms.len(), 1);
        assert!(equivalent(&unfold_plan(&views, &plan), &adhoc));
    }

    #[test]
    fn star_join_covered_by_two_views() {
        let mut dict = Dictionary::new();
        let views = views_of(&[
            q(&mut dict, "v1(X, Y) :- t(X, <p>, Y)"),
            q(&mut dict, "v2(X, Y) :- t(X, <q>, Y)"),
        ]);
        let adhoc = minimize(&q(&mut dict, "a(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)")).normalized();
        let plan = rewrite_views_only(&adhoc, &views).expect("coverable");
        assert!(plan.is_views_only());
        assert_eq!(plan.views_used().len(), 2);
        assert!(equivalent(&unfold_plan(&views, &plan), &adhoc));
    }

    #[test]
    fn joined_view_covers_its_own_shape_but_not_half_of_it() {
        let mut dict = Dictionary::new();
        // A 2-atom view joining through an existential: covers the full
        // chain, but q asking only for the first hop is NOT expressible
        // (the view's join restricts X to parents of painters).
        let views = views_of(&[q(
            &mut dict,
            "v(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
        )]);
        let chain = minimize(&q(
            &mut dict,
            "a(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
        ))
        .normalized();
        let plan = rewrite_views_only(&chain, &views).expect("the view is the query");
        assert!(plan.is_views_only());

        let first_hop = minimize(&q(&mut dict, "a(X, Y) :- t(X, <isParentOf>, Y)")).normalized();
        assert!(
            rewrite_views_only(&first_hop, &views).is_none(),
            "the joined view must not pretend to answer the bare first hop"
        );
    }

    #[test]
    fn uncoverable_atom_goes_hybrid_without_cross_products() {
        let mut dict = Dictionary::new();
        let views = views_of(&[q(&mut dict, "v(X, Y) :- t(X, <p>, Y)")]);
        let adhoc = minimize(&q(&mut dict, "a(X) :- t(X, <p>, Y), t(Y, <r>, <c>)")).normalized();
        assert!(rewrite_views_only(&adhoc, &views).is_none());
        let plan = rewrite_hybrid(&adhoc, &views);
        assert_eq!(plan.view_atoms(), 1);
        assert_eq!(plan.residual_atoms(), 1);
        assert!(equivalent(&unfold_plan(&views, &plan), &adhoc));
        assert_eq!(plan_component_count(&plan), query_component_count(&adhoc));
    }

    #[test]
    fn existential_projection_blocks_unsound_cover() {
        let mut dict = Dictionary::new();
        // The view projects the join variable away: using it for the first
        // atom would lose the join with the second.
        let views = views_of(&[q(&mut dict, "v(X) :- t(X, <p>, Y)")]);
        let adhoc = minimize(&q(&mut dict, "a(X) :- t(X, <p>, Y), t(Y, <q>, <c>)")).normalized();
        assert!(rewrite_views_only(&adhoc, &views).is_none());
        let plan = rewrite_hybrid(&adhoc, &views);
        // The sound hybrid keeps BOTH atoms on the base store — scanning
        // v for atom 1 cannot restore the join on Y.
        assert_eq!(plan.residual_atoms(), 2);
        assert!(equivalent(&unfold_plan(&views, &plan), &adhoc));
    }

    #[test]
    fn boolean_query_over_boolean_view() {
        let mut dict = Dictionary::new();
        let views = views_of(&[q(&mut dict, "v() :- t(X, <p>, Y)")]);
        let adhoc = minimize(&q(&mut dict, "a() :- t(X, <p>, Y)")).normalized();
        let plan = rewrite_views_only(&adhoc, &views).expect("boolean cover");
        assert!(plan.is_views_only());
        assert!(equivalent(&unfold_plan(&views, &plan), &adhoc));
    }

    #[test]
    fn base_plan_is_identity() {
        let mut dict = Dictionary::new();
        let adhoc = q(&mut dict, "a(X) :- t(X, <p>, Y), t(Y, <q>, Z)");
        let plan = base_plan(&adhoc);
        assert_eq!(plan.residual_atoms(), 2);
        assert_eq!(unfold_plan(&[], &plan), adhoc);
    }
}
