//! Rewriting unfolding: substituting view definitions back into a
//! rewriting, yielding a plain conjunctive query over the triple table.
//!
//! Unfolding is the semantic yardstick of the whole search: Definition 2.2
//! requires every rewriting to be *equivalent* to its workload query, and
//! the unfolded rewriting is exactly the query the rewriting computes.
//! Tests check `equivalent(unfold(S, i), qᵢ)` after every transition.

use rdf_model::FxHashMap;
use rdf_query::{ConjunctiveQuery, QTerm, Var};

use crate::state::State;

/// Unfolds the rewriting of query `query_idx` in `state` into a CQ over the
/// triple table.
pub fn unfold(state: &State, query_idx: usize) -> ConjunctiveQuery {
    let r = &state.rewritings()[query_idx];
    // Fresh variables for view existentials start above everything the
    // rewriting's variable space uses.
    let mut next_var = r
        .head
        .iter()
        .chain(r.atoms.iter().flat_map(|a| a.args.iter()))
        .filter_map(|t| t.as_var())
        .map(|v| v.0 + 1)
        .max()
        .unwrap_or(0);
    let mut atoms = Vec::new();
    for rew_atom in &r.atoms {
        let view = state.view(rew_atom.view);
        let mut map: FxHashMap<Var, QTerm> = FxHashMap::default();
        for (k, &h) in view.head.iter().enumerate() {
            map.insert(h, rew_atom.args[k]);
        }
        for atom in &view.atoms {
            for v in atom.vars() {
                map.entry(v).or_insert_with(|| {
                    let t = QTerm::Var(Var(next_var));
                    next_var += 1;
                    t
                });
            }
        }
        for atom in &view.atoms {
            atoms.push(atom.substitute(&map));
        }
    }
    ConjunctiveQuery::new(r.head.clone(), atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Dictionary;
    use rdf_query::containment::equivalent;
    use rdf_query::parser::parse_query;

    #[test]
    fn unfold_initial_state_is_identity() {
        let mut dict = Dictionary::new();
        let q = parse_query(
            "q(X, Z) :- t(X, <p>, Y), t(Y, <q>, Z), t(X, <r>, <c>)",
            &mut dict,
        )
        .unwrap()
        .query;
        let s0 = State::initial(std::slice::from_ref(&q));
        let u = unfold(&s0, 0);
        assert!(equivalent(&u, &q));
    }

    #[test]
    fn unfold_respects_selection_constants() {
        // Manually check an unfold where the rewriting pins a constant.
        let mut dict = Dictionary::new();
        let q = parse_query("q(X) :- t(X, <p>, <c>)", &mut dict)
            .unwrap()
            .query;
        let s0 = State::initial(std::slice::from_ref(&q));
        let cut = crate::transitions::enumerate(
            &s0,
            crate::transitions::TransitionKind::Sc,
            &Default::default(),
        );
        for t in &cut {
            let s1 = crate::transitions::apply(&s0, t);
            let u = unfold(&s1, 0);
            assert!(equivalent(&u, &q), "unfold after {t:?}");
        }
    }
}
