//! Workload partitioning — the paper's future-work direction implemented:
//! "we consider parallelizing our view search algorithms by identifying
//! workload queries that do not have many commonalities and running the
//! search in parallel for each group" (Section 8).
//!
//! Queries are grouped into connected components of a *sharing graph*:
//! two queries are connected when they share an atom shape (same
//! constants, same variable-repetition pattern — the unit View Fusion can
//! factorize across queries). Since no transition can fuse views of
//! queries in different components, searching the components independently
//! loses nothing; the component searches are embarrassingly parallel.
//!
//! The parallel phase runs on a **bounded group scheduler**: instead of
//! one unbounded thread per component, a fixed worker pool pulls groups
//! off a shared list in **largest-group-first** order (total body atoms),
//! so the heaviest search starts first and small groups backfill the
//! remaining workers. A group search that panics is captured per group and
//! surfaced as [`SelectionError::SearchPanicked`] instead of aborting the
//! process. When the search config asks for intra-search parallelism too
//! ([`crate::search::SearchConfig::parallelism`]), the scheduler splits
//! the thread budget: `pool × per-group explorers ≈ parallelism`, so one
//! giant sharing group (the Barton-style common case) still saturates the
//! machine instead of pinning a single core.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rdf_model::FxHashMap;
use rdf_query::{ConjunctiveQuery, UnionQuery};
use rdf_schema::{Schema, VocabIds};
use rdf_stats::AtomKey;

use crate::error::SelectionError;
use crate::pipeline::{
    effective_workload, search_session, Preparation, Recommendation, SelectionOptions,
};
use crate::search::{SearchOutcome, SearchStats};
use crate::state::State;

/// Groups workload queries into sharing components. Returns the groups as
/// sorted index lists, ordered by smallest member.
pub fn partition_workload(queries: &[ConjunctiveQuery]) -> Vec<Vec<usize>> {
    let n = queries.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    // Union queries sharing an atom key.
    let mut owner: FxHashMap<AtomKey, usize> = FxHashMap::default();
    for (qi, q) in queries.iter().enumerate() {
        for atom in &q.atoms {
            let key = AtomKey::of(atom);
            match owner.get(&key) {
                Some(&other) => {
                    let a = find(&mut parent, qi);
                    let b = find(&mut parent, other);
                    parent[a] = b;
                }
                None => {
                    owner.insert(key, qi);
                }
            }
        }
    }
    let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for qi in 0..n {
        let root = find(&mut parent, qi);
        groups.entry(root).or_default().push(qi);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort();
    out
}

/// Runs view selection per sharing group (optionally on threads) through
/// a prepared session, and merges the results into one recommendation
/// covering the full workload.
///
/// The session's catalog is topped up for **all** groups first
/// (sequentially), so the parallel phase shares one read-only
/// [`Preparation`] across threads instead of recollecting statistics per
/// group — the saturated copy and every atom count are computed at most
/// once for the session's lifetime.
///
/// The merged `outcome` aggregates costs and counters across groups; its
/// `best_state` holds every group's views and rewritings, with
/// `branch_of` mapping each rewriting back to its original query index.
pub fn select_views_partitioned_session(
    prep: &mut Preparation,
    store: &rdf_model::TripleStore,
    schema: Option<(&Schema, &VocabIds)>,
    workload: &[ConjunctiveQuery],
    options: &SelectionOptions,
    parallel: bool,
) -> Result<Recommendation, SelectionError> {
    if workload.is_empty() {
        return Err(SelectionError::EmptyWorkload);
    }
    if options.reasoning != prep.reasoning() {
        return Err(SelectionError::ModeMismatch {
            prepared: prep.reasoning(),
            requested: options.reasoning,
        });
    }
    prep.ensure_fresh(store)?;
    let groups = partition_workload(workload);
    // Phase 1, sequential: effective workloads and catalog top-up.
    let mut jobs: Vec<(Vec<ConjunctiveQuery>, Vec<usize>)> = Vec::with_capacity(groups.len());
    for group in &groups {
        let sub: Vec<ConjunctiveQuery> = group.iter().map(|&i| workload[i].clone()).collect();
        let (effective, branch_of) = effective_workload(prep.reasoning(), schema, &sub)?;
        prep.extend(store, schema, &effective)?;
        jobs.push((effective, branch_of));
    }
    // Phase 2: group searches, read-only on the shared session, dispatched
    // by the bounded scheduler.
    let results = run_group_scheduler(prep, schema, jobs, options, parallel);
    let recs: Vec<Recommendation> = results.into_iter().collect::<Result<_, _>>()?;
    Ok(merge_recommendations(&groups, recs))
}

/// One group's prepared search input.
type GroupJob = (Vec<ConjunctiveQuery>, Vec<usize>);

/// Dispatches the group searches onto a bounded worker pool,
/// largest-group-first, capturing per-group panics. Results come back in
/// group order.
fn run_group_scheduler(
    prep: &Preparation,
    schema: Option<(&Schema, &VocabIds)>,
    jobs: Vec<GroupJob>,
    options: &SelectionOptions,
    parallel: bool,
) -> Vec<Result<Recommendation, SelectionError>> {
    let n = jobs.len();
    // Largest group first: schedule by descending total body atoms, the
    // driver of search-space size, so the heaviest search never starts
    // last on a nearly-drained pool.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| {
        std::cmp::Reverse(jobs[i].0.iter().map(|q| q.atoms.len()).sum::<usize>())
    });
    let (pool, per_group) = if !parallel {
        // Sequential dispatch; intra-group parallelism stays exactly as
        // asked (0 = auto is resolved by the search core itself).
        (1, options.search.parallelism)
    } else if options.search.parallelism == 1 {
        // `parallel = true` with the default search config keeps the
        // historical meaning — concurrent groups, sequential within — but
        // bounded by the core count instead of one thread per group.
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(4);
        (cores.min(n).max(1), 1)
    } else {
        // An explicit thread budget is split between the two layers: with
        // fewer groups than budgeted threads, the spare threads become
        // per-group explorers (one giant group still saturates the pool).
        let budget = options.search.effective_parallelism();
        let pool = budget.min(n).max(1);
        (pool, (budget / pool).max(1))
    };
    let mut group_options = options.clone();
    group_options.search.parallelism = per_group;

    let run_one = |job: GroupJob| -> Result<Recommendation, SelectionError> {
        let (effective, branch_of) = job;
        catch_unwind(AssertUnwindSafe(|| {
            search_session(prep, schema, effective, branch_of, &group_options)
        }))
        .unwrap_or_else(|payload| {
            Err(SelectionError::SearchPanicked {
                detail: panic_detail(payload.as_ref()),
            })
        })
    };

    if pool > 1 {
        let slots: Vec<Mutex<Option<GroupJob>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<Result<Recommendation, SelectionError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..pool {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    let gi = order[k];
                    let job = crate::sync::lock_unpoisoned(&slots[gi])
                        .take()
                        // xlint: allow(X001, reason = "fetch_add hands each slot index to exactly one worker")
                        .expect("job taken once");
                    *crate::sync::lock_unpoisoned(&results[gi]) = Some(run_one(job));
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    // xlint: allow(X001, reason = "the worker loop writes every group index before the scope joins")
                    .expect("scheduler covers all groups")
            })
            .collect()
    } else {
        // Sequential dispatch still honors the largest-first order (and
        // the panic capture), so behavior only differs in concurrency.
        let mut slots: Vec<Option<GroupJob>> = jobs.into_iter().map(Some).collect();
        let mut results: Vec<Option<Result<Recommendation, SelectionError>>> =
            (0..n).map(|_| None).collect();
        for &gi in &order {
            // xlint: allow(X001, reason = "the order permutation visits each group exactly once")
            let job = slots[gi].take().expect("job taken once");
            results[gi] = Some(run_one(job));
        }
        results
            .into_iter()
            // xlint: allow(X001, reason = "the loop above fills every group slot")
            .map(|r| r.expect("scheduler covers all groups"))
            .collect()
    }
}

/// Stringifies a captured panic payload (`&str` and `String` payloads are
/// the common cases; anything else reports its type opaquely).
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One-shot fallible partitioned selection: prepares a throwaway session
/// and runs [`select_views_partitioned_session`] once.
pub fn try_select_views_partitioned(
    store: &rdf_model::TripleStore,
    dict: &rdf_model::Dictionary,
    schema: Option<(&Schema, &VocabIds)>,
    workload: &[ConjunctiveQuery],
    options: &SelectionOptions,
    parallel: bool,
) -> Result<Recommendation, SelectionError> {
    let mut prep = Preparation::new(store, dict, schema, options.reasoning)?;
    select_views_partitioned_session(&mut prep, store, schema, workload, options, parallel)
}

/// Backward-compatible wrapper over [`try_select_views_partitioned`];
/// panics on misconfiguration.
pub fn select_views_partitioned(
    store: &rdf_model::TripleStore,
    dict: &rdf_model::Dictionary,
    schema: Option<(&Schema, &VocabIds)>,
    workload: &[ConjunctiveQuery],
    options: &SelectionOptions,
    parallel: bool,
) -> Recommendation {
    try_select_views_partitioned(store, dict, schema, workload, options, parallel)
        // xlint: allow(X001, reason = "documented panicking compatibility wrapper over the fallible API")
        .unwrap_or_else(|e| panic!("select_views_partitioned: {e}"))
}

fn merge_recommendations(groups: &[Vec<usize>], recs: Vec<Recommendation>) -> Recommendation {
    let mut merged_state: Option<State> = None;
    let mut workload: Vec<ConjunctiveQuery> = Vec::new();
    let mut branch_of: Vec<usize> = Vec::new();
    let mut materialization: Vec<UnionQuery> = Vec::new();
    let mut stats = SearchStats::default();
    let mut initial_cost = 0.0;
    let mut best_cost = 0.0;
    let mut catalog = None;
    for (group, rec) in groups.iter().zip(recs) {
        // Map the group's branch indexes back to original query indexes.
        for (&b, q) in rec.branch_of.iter().zip(rec.workload.iter()) {
            branch_of.push(group[b]);
            workload.push(q.clone());
        }
        materialization.extend(rec.materialization);
        initial_cost += rec.outcome.initial_cost;
        best_cost += rec.outcome.best_cost;
        stats.created += rec.outcome.stats.created;
        stats.duplicates += rec.outcome.stats.duplicates;
        stats.discarded += rec.outcome.stats.discarded;
        stats.explored += rec.outcome.stats.explored;
        stats.transitions += rec.outcome.stats.transitions;
        stats.reexpansions += rec.outcome.stats.reexpansions;
        stats.frontier_remaining += rec.outcome.stats.frontier_remaining;
        stats.timed_out |= rec.outcome.stats.timed_out;
        stats.out_of_budget |= rec.outcome.stats.out_of_budget;
        stats.elapsed = stats.elapsed.max(rec.outcome.stats.elapsed);
        merged_state = Some(match merged_state {
            None => rec.outcome.best_state,
            Some(acc) => acc.merge_with(&rec.outcome.best_state),
        });
        catalog = Some(rec.catalog);
    }
    // xlint: allow(X001, reason = "callers reject empty workloads with SelectionError::EmptyWorkload")
    let best_state = merged_state.expect("non-empty workload");
    debug_assert_eq!(best_state.check_invariants(), Ok(()));
    let views = best_state.views().cloned().collect();
    Recommendation {
        workload,
        branch_of,
        outcome: SearchOutcome {
            best_state,
            best_cost,
            initial_cost,
            stats,
        },
        views,
        materialization,
        // xlint: allow(X001, reason = "callers reject empty workloads with SelectionError::EmptyWorkload")
        catalog: catalog.expect("non-empty workload"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::select_views;
    use crate::search::SearchConfig;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;

    fn db() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..40 {
            let s = format!("s{i}");
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri(format!("p{}", i % 4)),
                Term::uri(format!("o{}", i % 5)),
            );
        }
        db
    }

    #[test]
    fn partition_by_shared_atoms() {
        let mut dict = rdf_model::Dictionary::new();
        // q0 and q1 share t(·, p0, ·); q2 is isolated.
        let q0 = parse_query("q0(X) :- t(X, <p0>, Y), t(X, <p1>, Z)", &mut dict)
            .unwrap()
            .query;
        let q1 = parse_query("q1(A) :- t(A, <p0>, B)", &mut dict)
            .unwrap()
            .query;
        let q2 = parse_query("q2(U) :- t(U, <p9>, <o9>)", &mut dict)
            .unwrap()
            .query;
        let groups = partition_workload(&[q0, q1, q2]);
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn transitive_sharing_merges_groups() {
        let mut dict = rdf_model::Dictionary::new();
        let q0 = parse_query("q0(X) :- t(X, <p0>, Y)", &mut dict)
            .unwrap()
            .query;
        let q1 = parse_query("q1(X) :- t(X, <p0>, Y), t(X, <p1>, Z)", &mut dict)
            .unwrap()
            .query;
        let q2 = parse_query("q2(X) :- t(X, <p1>, Y)", &mut dict)
            .unwrap()
            .query;
        let groups = partition_workload(&[q0, q1, q2]);
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn constants_distinguish_atom_shapes() {
        let mut dict = rdf_model::Dictionary::new();
        // Same property, different object constants: no sharing.
        let q0 = parse_query("q0(X) :- t(X, <p>, <a>)", &mut dict)
            .unwrap()
            .query;
        let q1 = parse_query("q1(X) :- t(X, <p>, <b>)", &mut dict)
            .unwrap()
            .query;
        let groups = partition_workload(&[q0, q1]);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn partitioned_selection_answers_full_workload() {
        let mut db = db();
        let queries = vec![
            parse_query("q0(X) :- t(X, <p0>, Y)", db.dict_mut())
                .unwrap()
                .query,
            parse_query("q1(X) :- t(X, <p1>, <o1>)", db.dict_mut())
                .unwrap()
                .query,
            parse_query("q2(X, Y) :- t(X, <p2>, Y)", db.dict_mut())
                .unwrap()
                .query,
        ];
        for parallel in [false, true] {
            let rec = select_views_partitioned(
                db.store(),
                db.dict(),
                None,
                &queries,
                &SelectionOptions {
                    calibrate_cm: true,
                    search: SearchConfig {
                        time_budget: Some(std::time::Duration::from_secs(1)),
                        ..SearchConfig::default()
                    },
                    ..Default::default()
                },
                parallel,
            );
            rec.outcome.best_state.check_invariants().unwrap();
            assert_eq!(rec.branch_of.len(), 3);
            // Every original query must be answerable.
            let mut seen: rdf_model::FxHashSet<usize> = Default::default();
            seen.extend(rec.branch_of.iter().copied());
            assert_eq!(seen.len(), 3);
        }
    }

    #[test]
    fn partitioned_session_shares_one_catalog() {
        let mut db = db();
        let queries = vec![
            parse_query("q0(X) :- t(X, <p0>, Y)", db.dict_mut())
                .unwrap()
                .query,
            parse_query("q1(X) :- t(X, <p1>, <o1>)", db.dict_mut())
                .unwrap()
                .query,
        ];
        let opts = SelectionOptions {
            calibrate_cm: true,
            ..Default::default()
        };
        let mut prep = Preparation::new(
            db.store(),
            db.dict(),
            None,
            crate::pipeline::ReasoningMode::Plain,
        )
        .unwrap();
        for parallel in [false, true] {
            let rec = select_views_partitioned_session(
                &mut prep,
                db.store(),
                None,
                &queries,
                &opts,
                parallel,
            )
            .unwrap();
            assert_eq!(rec.branch_of.len(), 2);
        }
        let collected = prep.stats_collections();
        // A third run over the same workload must not count anything new.
        select_views_partitioned_session(&mut prep, db.store(), None, &queries, &opts, true)
            .unwrap();
        assert_eq!(prep.stats_collections(), collected);
    }

    #[test]
    fn partitioned_matches_joint_search_on_independent_groups() {
        // For disjoint groups the search spaces are independent, so the
        // sum of per-group best costs equals the joint search's best cost
        // (given enough budget to explore both).
        let mut db = db();
        let queries = vec![
            parse_query("q0(X) :- t(X, <p0>, <o0>), t(X, <p0>, Y)", db.dict_mut())
                .unwrap()
                .query,
            parse_query("q1(A) :- t(A, <p3>, <o2>)", db.dict_mut())
                .unwrap()
                .query,
        ];
        // NOTE: q0 is non-minimal by construction? No: t(X,p0,o0) and
        // t(X,p0,Y) — Y folds onto o0; minimization inside select_views
        // reduces it to one atom. Both groups stay independent.
        let opts = SelectionOptions {
            calibrate_cm: false,
            ..Default::default()
        };
        let joint = select_views(db.store(), db.dict(), None, &queries, &opts);
        let parted = select_views_partitioned(db.store(), db.dict(), None, &queries, &opts, false);
        let rel = (joint.outcome.best_cost - parted.outcome.best_cost).abs()
            / joint.outcome.best_cost.max(1e-9);
        assert!(
            rel < 1e-6,
            "joint {} vs partitioned {}",
            joint.outcome.best_cost,
            parted.outcome.best_cost
        );
    }
}
