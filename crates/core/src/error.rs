//! Fallible-path errors for the selection pipeline and the advisor
//! session API built on top of it.

use crate::pipeline::ReasoningMode;
use rdf_query::parser::ParseError;

/// Everything that can go wrong while configuring or running view
/// selection.
///
/// Before this type existed the pipeline panicked on misconfiguration
/// (`expect("… needs a schema")`); every fallible entry point now returns
/// `Result<_, SelectionError>` instead.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionError {
    /// The chosen [`ReasoningMode`] needs an RDF Schema, but none was
    /// provided.
    SchemaRequired(ReasoningMode),
    /// The workload has no queries; a state needs at least one rewriting.
    EmptyWorkload,
    /// A workload query failed to parse.
    Parse(ParseError),
    /// The search ran out of its state or time budget before completing,
    /// and the caller asked for that to be an error
    /// (`SelectionOptions::fail_on_exhausted_budget`).
    BudgetExhausted {
        /// States created before the budget ran out.
        created: u64,
    },
    /// A query index outside the workload (or recommendation) was
    /// referenced.
    UnknownQuery {
        /// The offending index.
        index: usize,
        /// The number of known queries.
        len: usize,
    },
    /// A group search panicked on a worker thread of the partitioned
    /// scheduler. The panic is captured and surfaced instead of aborting
    /// the process (a panicking `thread::scope` join would otherwise
    /// propagate and take the whole selection down).
    SearchPanicked {
        /// The panic payload, stringified.
        detail: String,
    },
    /// A prepared session was asked to run under a different reasoning
    /// mode than it was built for.
    ModeMismatch {
        /// The mode the session was prepared for.
        prepared: ReasoningMode,
        /// The mode the call requested.
        requested: ReasoningMode,
    },
    /// No complete views-only rewriting of an ad-hoc query exists over the
    /// deployed views. Returned by planning under the views-only answer
    /// policy instead of silently wrong (or empty) answers; a hybrid or
    /// base-fallback policy would answer the query.
    NoViewsOnlyPlan {
        /// Query atoms left uncovered by the best hybrid cover.
        residual_atoms: usize,
    },
    /// An ad-hoc query the planner cannot handle (unsafe head variable,
    /// empty body, too many atoms, or a reformulation that exceeds the
    /// branch limit).
    UnsupportedQuery {
        /// Why the query was rejected.
        reason: String,
    },
    /// A query plan was executed on a deployment other than the one that
    /// produced it. Plans bind the view ids (and store version) of their
    /// own deployment; running them elsewhere could silently read the
    /// wrong view tables.
    ForeignPlan,
    /// The store changed after the session's statistics were prepared (its
    /// version stamp moved), so running against the cached preparation
    /// would silently compute on stale statistics — or answer from views
    /// that no longer reflect the data. Re-prepare via the session's
    /// `refresh()` path (or rematerialize the deployment) and retry.
    StaleSession {
        /// The store version the session was prepared against.
        prepared: u64,
        /// The store's current version.
        current: u64,
    },
    /// An operating-system I/O failure on a durability path (snapshot
    /// write, WAL append, recovery read). The OS error travels as a string
    /// so the type stays `Clone + PartialEq`.
    Io {
        /// What was being attempted (e.g. `"writing snapshot /data/x"`).
        context: String,
        /// The OS error message.
        message: String,
    },
    /// A snapshot bundle failed validation: bad magic, unsupported format
    /// version, a section checksum mismatch, or inconsistent contents.
    /// Detected at load time — a bundle that decodes is fully trusted at
    /// query time.
    CorruptBundle {
        /// The first defect found.
        detail: String,
    },
    /// The write-ahead log ends in an incomplete (torn) record. Recovery
    /// drops the tail and succeeds; strict verification surfaces it as
    /// this error.
    WalTornTail {
        /// Byte offset of the first incomplete record.
        offset: u64,
    },
}

impl std::fmt::Display for SelectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionError::SchemaRequired(mode) => {
                write!(f, "{mode:?} reasoning requires a schema; none was provided")
            }
            SelectionError::EmptyWorkload => write!(f, "the workload is empty"),
            SelectionError::Parse(e) => write!(f, "workload query: {e}"),
            SelectionError::BudgetExhausted { created } => {
                write!(f, "search budget exhausted after creating {created} states")
            }
            SelectionError::UnknownQuery { index, len } => {
                write!(f, "query index {index} out of range (workload has {len})")
            }
            SelectionError::SearchPanicked { detail } => {
                write!(f, "a group search thread panicked: {detail}")
            }
            SelectionError::ModeMismatch {
                prepared,
                requested,
            } => write!(
                f,
                "session was prepared for {prepared:?} reasoning but {requested:?} was requested"
            ),
            SelectionError::NoViewsOnlyPlan { residual_atoms } => write!(
                f,
                "no complete views-only rewriting exists over the deployed views \
                 ({residual_atoms} atom(s) uncovered); use the Hybrid or BaseFallback policy"
            ),
            SelectionError::UnsupportedQuery { reason } => {
                write!(f, "unsupported ad-hoc query: {reason}")
            }
            SelectionError::ForeignPlan => write!(
                f,
                "the query plan was produced by a different deployment; re-plan on this one"
            ),
            SelectionError::StaleSession { prepared, current } => write!(
                f,
                "session was prepared at store version {prepared} but the store is now at \
                 {current}; refresh() the session before recommending"
            ),
            SelectionError::Io { context, message } => {
                write!(f, "i/o failure while {context}: {message}")
            }
            SelectionError::CorruptBundle { detail } => {
                write!(f, "corrupt snapshot bundle: {detail}")
            }
            SelectionError::WalTornTail { offset } => write!(
                f,
                "write-ahead log has a torn tail record at byte {offset}; \
                 recover() drops it and replays the valid prefix"
            ),
        }
    }
}

impl std::error::Error for SelectionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SelectionError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for SelectionError {
    fn from(e: ParseError) -> Self {
        SelectionError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_mode() {
        let e = SelectionError::SchemaRequired(ReasoningMode::Saturation);
        assert!(e.to_string().contains("Saturation"));
        let e = SelectionError::UnknownQuery { index: 4, len: 2 };
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn stale_session_displays_both_versions() {
        let e = SelectionError::StaleSession {
            prepared: 3,
            current: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('9'));
    }

    #[test]
    fn durability_errors_display_their_payloads() {
        let e = SelectionError::Io {
            context: "writing snapshot /x".into(),
            message: "disk full".into(),
        };
        assert!(e.to_string().contains("disk full"));
        let e = SelectionError::CorruptBundle {
            detail: "section 3 checksum mismatch".into(),
        };
        assert!(e.to_string().contains("checksum"));
        let e = SelectionError::WalTornTail { offset: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn parse_errors_convert() {
        let p = ParseError {
            offset: 3,
            message: "bad token".into(),
        };
        let e: SelectionError = p.clone().into();
        assert_eq!(e, SelectionError::Parse(p));
        assert!(std::error::Error::source(&e).is_some());
    }
}
