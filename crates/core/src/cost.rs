//! The state cost estimation `cǫ` (Section 3.3):
//!
//! ```text
//! cǫ(S) = cs · VSOǫ(S) + cr · RECǫ(S) + cm · VMCǫ(S)
//! ```
//!
//! * **VSOǫ** — view space occupancy: `Σ_v |v|ǫ × (Σ head column widths)`;
//! * **RECǫ** — rewriting evaluation cost: `Σ_r c1·ioǫ(r) + c2·cpuǫ(r)`,
//!   where `ioǫ(r) = Σ_{v ∈ r} |v|ǫ` and `cpuǫ` sums selection, hash-join
//!   (build + probe + output) and projection costs along a left-deep plan;
//! * **VMCǫ** — view maintenance: `Σ_v f^len(v)` for a user factor `f`.
//!
//! The transition cost laws the paper states (SC always increases the
//! cost, VF never increases it, JC/VB may go either way) hold for this
//! model and are property-tested in the workspace test suite.

use rdf_model::FxHashMap;
use rdf_stats::{estimate_conjunction, CardinalityEstimator, RelAtom, RelStats, StatsCatalog};

use crate::state::{Rewriting, State, ViewId};

/// Occurrence count of each variable across a whole rewriting; computed
/// once per rewriting and shared by every [`arg_shape`] call (this sits
/// inside the search's hottest loop).
fn var_multiplicity(r: &Rewriting) -> FxHashMap<rdf_query::Var, u64> {
    use rdf_query::QTerm;
    let mut multiplicity: FxHashMap<rdf_query::Var, u64> = FxHashMap::default();
    for a in &r.atoms {
        for t in &a.args {
            if let QTerm::Var(v) = t {
                *multiplicity.entry(*v).or_insert(0) += 1;
            }
        }
    }
    multiplicity
}

/// A renaming- and order-invariant shape key for one rewriting atom: the
/// sorted multiset of per-argument classes — `(0, id, 0)` for a constant,
/// `(1, multiplicity of the variable across the whole rewriting, 0)` for a
/// variable. Used only to break exact cardinality ties in the canonical
/// join order; atoms identical under cardinalities *and* this shape are
/// interchangeable for the chain estimate.
fn arg_shape(atom: &RelAtom, multiplicity: &FxHashMap<rdf_query::Var, u64>) -> Vec<(u8, u64, u64)> {
    use rdf_query::QTerm;
    let mut shape: Vec<(u8, u64, u64)> = atom
        .args
        .iter()
        .map(|t| match t {
            QTerm::Const(id) => (0u8, id.0 as u64, 0u64),
            QTerm::Var(v) => (1u8, multiplicity.get(v).copied().unwrap_or(1), 0u64),
        })
        .collect();
    shape.sort_unstable();
    shape
}

/// The weights of the cost combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Storage weight (`cs`).
    pub cs: f64,
    /// Rewriting-evaluation weight (`cr`).
    pub cr: f64,
    /// Maintenance weight (`cm`).
    pub cm: f64,
    /// I/O weight inside REC (`c1`).
    pub c1: f64,
    /// CPU weight inside REC (`c2`).
    pub c2: f64,
    /// Maintenance fan-out factor (`f` in `VMC = Σ f^len(v)`).
    pub f: f64,
}

impl Default for CostWeights {
    /// The paper's experimental settings: `cs = cr = 1`, `cm = 0.5`,
    /// `f = 2` (Section 6, "Weights of cost components").
    fn default() -> Self {
        Self {
            cs: 1.0,
            cr: 1.0,
            cm: 0.5,
            c1: 1.0,
            c2: 1.0,
            f: 2.0,
        }
    }
}

/// A state's cost, componentwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// View space occupancy (unweighted).
    pub vso: f64,
    /// Rewriting evaluation cost (unweighted).
    pub rec: f64,
    /// View maintenance cost (unweighted).
    pub vmc: f64,
    /// The weighted total `cǫ`.
    pub total: f64,
}

/// The cost model: an estimator over a statistics catalog plus weights.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    est: CardinalityEstimator<'a>,
    /// The weight configuration.
    pub weights: CostWeights,
}

impl<'a> CostModel<'a> {
    /// Builds a model over a catalog.
    pub fn new(catalog: &'a StatsCatalog, weights: CostWeights) -> Self {
        Self {
            est: CardinalityEstimator::new(catalog),
            weights,
        }
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> CardinalityEstimator<'a> {
        self.est
    }

    /// `cǫ(S)`.
    pub fn cost(&self, state: &State) -> f64 {
        self.breakdown(state).total
    }

    /// All components of `cǫ(S)`.
    pub fn breakdown(&self, state: &State) -> CostBreakdown {
        // Per-view statistics, shared by VSO and REC.
        let mut view_stats: FxHashMap<ViewId, RelStats> = FxHashMap::default();
        let mut vso = 0.0;
        let mut vmc = 0.0;
        for v in state.views() {
            let q = v.as_query();
            let stats = self.est.view_stats(&q);
            let widths: f64 = self.est.head_widths(&q).iter().sum();
            vso += stats.card * widths;
            vmc += self.weights.f.powi(v.len() as i32);
            view_stats.insert(v.id, stats);
        }
        let mut rec = 0.0;
        for r in state.rewritings() {
            rec += self.rewriting_cost(r, &view_stats);
        }
        CostBreakdown {
            vso,
            rec,
            vmc,
            total: self.weights.cs * vso + self.weights.cr * rec + self.weights.cm * vmc,
        }
    }

    /// `c1·ioǫ(r) + c2·cpuǫ(r)` for one rewriting.
    ///
    /// The left-deep join chain runs in a **canonical order** — most
    /// selective atom first, with representation-independent tie-breaks —
    /// rather than the rewriting's textual atom order. States reached
    /// through different transition paths (or by different explorer
    /// threads) carry differently-ordered but equivalent rewritings; the
    /// canonical plan makes their estimated cost identical, which is what
    /// lets parallel and sequential searches agree on the best cost.
    fn rewriting_cost(&self, r: &Rewriting, view_stats: &FxHashMap<ViewId, RelStats>) -> f64 {
        let mut rel_atoms: Vec<RelAtom> = r
            .atoms
            .iter()
            .map(|a| RelAtom {
                stats: view_stats[&a.view].clone(),
                args: a.args.clone(),
                baked: false,
            })
            .collect();
        // ioǫ: one scan per view occurrence.
        let io: f64 = rel_atoms.iter().map(|a| a.stats.card).sum();
        // Canonical chain order: ascending (post-selection cardinality,
        // relation cardinality, argument shape). Every key component is
        // invariant under variable renaming and atom reordering.
        type KeyedAtom = (f64, f64, Vec<(u8, u64, u64)>, RelAtom);
        let multiplicity = var_multiplicity(r);
        let mut keyed: Vec<KeyedAtom> = rel_atoms
            .drain(..)
            .map(|a| {
                let sel = estimate_conjunction(std::slice::from_ref(&a));
                let shape = arg_shape(&a, &multiplicity);
                (sel, a.stats.card, shape, a)
            })
            .collect();
        keyed.sort_by(|x, y| {
            x.0.total_cmp(&y.0)
                .then(x.1.total_cmp(&y.1))
                .then(x.2.cmp(&y.2))
        });
        // cpuǫ: selections (one pass per atom), then a left-deep chain of
        // hash joins (build + probe + output), then the final projection.
        let sel_cards: Vec<f64> = keyed.iter().map(|k| k.0).collect();
        let rel_atoms: Vec<RelAtom> = keyed.into_iter().map(|k| k.3).collect();
        let mut cpu: f64 = rel_atoms.iter().map(|a| a.stats.card).sum();
        let mut current = sel_cards.first().copied().unwrap_or(0.0);
        for i in 1..rel_atoms.len() {
            let joined = estimate_conjunction(&rel_atoms[..=i]);
            cpu += current + sel_cards[i] + joined;
            current = joined;
        }
        cpu += current; // final projection pass
        self.weights.c1 * io + self.weights.c2 * cpu
    }

    /// Calibrates `cm` the way the paper does for each workload: scale it
    /// so that `cm·VMC(S0)` sits two orders of magnitude below the other
    /// two components (Section 6, "Weights of cost components").
    pub fn calibrate_cm(&mut self, s0: &State) {
        let b = self.breakdown(s0);
        if b.vmc > 0.0 {
            let others = self.weights.cs * b.vso + self.weights.cr * b.rec;
            if others > 0.0 {
                self.weights.cm = (others / 100.0) / b.vmc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::State;
    use crate::transitions::{apply, enumerate, TransitionConfig, TransitionKind};
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;
    use rdf_stats::collect_stats;

    fn dataset() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..50 {
            let s = format!("s{i}");
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri("p"),
                Term::uri(format!("o{}", i % 5)),
            );
            if i % 2 == 0 {
                db.insert_terms(Term::uri(s.as_str()), Term::uri("q"), Term::uri("c"));
            }
        }
        db
    }

    #[test]
    fn initial_state_cost_positive_components() {
        let mut db = dataset();
        let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![q];
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        let b = model.breakdown(&State::initial(&queries));
        assert!(b.vso > 0.0);
        assert!(b.rec > 0.0);
        assert!((b.vmc - 4.0).abs() < 1e-9); // f^2 for the 2-atom view
        assert!(b.total > 0.0);
    }

    #[test]
    fn sc_always_increases_cost() {
        // The paper's transition law: "SC always increases the state cost".
        let mut db = dataset();
        let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![q];
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        let s0 = State::initial(&queries);
        let c0 = model.cost(&s0);
        for t in enumerate(&s0, TransitionKind::Sc, &TransitionConfig::default()) {
            let s1 = apply(&s0, &t);
            assert!(
                model.cost(&s1) > c0,
                "SC must increase cost: {t:?} gave {} vs {c0}",
                model.cost(&s1)
            );
        }
    }

    #[test]
    fn vf_never_increases_cost() {
        let mut db = dataset();
        let qa = parse_query("qa(X) :- t(X, <p>, Y)", db.dict_mut())
            .unwrap()
            .query;
        let qb = parse_query("qb(A) :- t(A, <p>, B)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![qa, qb];
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        let s0 = State::initial(&queries);
        let c0 = model.cost(&s0);
        let vfs = enumerate(&s0, TransitionKind::Vf, &TransitionConfig::default());
        assert!(!vfs.is_empty());
        for t in vfs {
            let s1 = apply(&s0, &t);
            assert!(model.cost(&s1) <= c0, "VF must not increase cost");
        }
    }

    #[test]
    fn calibration_brings_vmc_in_range() {
        let mut db = dataset();
        let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![q];
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let mut model = CostModel::new(&cat, CostWeights::default());
        let s0 = State::initial(&queries);
        model.calibrate_cm(&s0);
        let b = model.breakdown(&s0);
        let others = model.weights.cs * b.vso + model.weights.cr * b.rec;
        let scaled = model.weights.cm * b.vmc;
        assert!(scaled <= others);
        assert!(scaled >= others / 1000.0);
    }
}
