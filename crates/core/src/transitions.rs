//! The four state transitions (Definitions 3.2–3.5).
//!
//! Each transition replaces one view (or fuses two) and rewires every
//! rewriting that referenced it, exactly as the paper prescribes:
//!
//! * **Selection Cut** (SC) removes a constant, returning it as a fresh head
//!   variable; rewritings regain the selection `σ` as a constant argument.
//! * **Join Cut** (JC) renames one occurrence of a join variable; both
//!   variables become head variables, and rewritings regain the join as a
//!   repeated argument term — splitting the view in two when the cut
//!   disconnects its graph.
//! * **View Break** (VB) splits a view along two connected, incomparable
//!   node covers; shared variables are exported so the rewriting's natural
//!   join restores the original.
//! * **View Fusion** (VF) merges two views with isomorphic bodies, uniting
//!   their heads through the renaming.
//!
//! The transition set is complete: every state of the space is reachable
//! from `S0` (Theorem 5.1), and reachable through a *stratified* path
//! VB\* SC\* JC\* VF\* (Theorem 5.2) — the property the search strategies
//! exploit. Both are exercised by this crate's tests.

use rdf_model::{FxHashMap, FxHashSet, Id};
use rdf_query::canonical::body_isomorphism;
use rdf_query::graph::{JoinGraph, Occurrence};
use rdf_query::{Atom, QTerm, Var};

use crate::state::{RewAtom, State, View, ViewId};

/// The kind of a transition, in stratified order (Definition 5.3:
/// paths of the form VB\* SC\* JC\* VF\*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransitionKind {
    /// View Break.
    Vb = 0,
    /// Selection Cut.
    Sc = 1,
    /// Join Cut.
    Jc = 2,
    /// View Fusion.
    Vf = 3,
}

impl TransitionKind {
    /// All kinds in stratified order.
    pub const ALL: [TransitionKind; 4] = [
        TransitionKind::Vb,
        TransitionKind::Sc,
        TransitionKind::Jc,
        TransitionKind::Vf,
    ];
}

/// A concrete transition instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transition {
    /// Replace the constant at `(atom, pos)` of `view` by a fresh head
    /// variable (Definition 3.3).
    SelectionCut {
        /// The view holding the constant.
        view: ViewId,
        /// Atom index within the view body.
        atom: usize,
        /// Column (0 = s, 1 = p, 2 = o).
        pos: usize,
    },
    /// Rename the occurrence `occ` of join variable `var` in `view`
    /// (Definition 3.4). Splits the view if its graph disconnects.
    JoinCut {
        /// The view holding the join edge.
        view: ViewId,
        /// The join variable.
        var: Var,
        /// The occurrence being renamed (the `ni.ai` side of the edge).
        occ: Occurrence,
    },
    /// Split `view` along the connected node covers `n1`, `n2`
    /// (Definition 3.2; `n1 ∪ n2` covers the body, neither contains the
    /// other).
    ViewBreak {
        /// The view being broken.
        view: ViewId,
        /// First node cover (sorted atom indexes).
        n1: Vec<usize>,
        /// Second node cover.
        n2: Vec<usize>,
    },
    /// Fuse `merge` into `keep` (their bodies are isomorphic;
    /// Definition 3.5).
    ViewFusion {
        /// The view whose variable space the fusion keeps.
        keep: ViewId,
        /// The view folded into `keep`.
        merge: ViewId,
    },
}

impl Transition {
    /// The transition's kind.
    pub fn kind(&self) -> TransitionKind {
        match self {
            Transition::ViewBreak { .. } => TransitionKind::Vb,
            Transition::SelectionCut { .. } => TransitionKind::Sc,
            Transition::JoinCut { .. } => TransitionKind::Jc,
            Transition::ViewFusion { .. } => TransitionKind::Vf,
        }
    }
}

/// Enumeration knobs.
#[derive(Debug, Clone, Copy)]
pub struct TransitionConfig {
    /// Maximum number of overlapping nodes between the two covers of a View
    /// Break. Full enumeration is `3^n` per view; overlap ≤ 1 covers the
    /// paper's examples (Figure 1 overlaps on a single node) while keeping
    /// exhaustive search tractable.
    pub vb_overlap_limit: usize,
}

impl Default for TransitionConfig {
    fn default() -> Self {
        Self {
            vb_overlap_limit: 1,
        }
    }
}

/// Enumerates every applicable transition of `kind` on `state`, in a
/// deterministic order.
pub fn enumerate(state: &State, kind: TransitionKind, cfg: &TransitionConfig) -> Vec<Transition> {
    match kind {
        TransitionKind::Sc => enumerate_sc(state),
        TransitionKind::Jc => enumerate_jc(state),
        TransitionKind::Vb => enumerate_vb(state, cfg),
        TransitionKind::Vf => enumerate_vf(state),
    }
}

fn enumerate_sc(state: &State) -> Vec<Transition> {
    let mut out = Vec::new();
    for view in state.views() {
        for (ai, atom) in view.atoms.iter().enumerate() {
            for (pos, term) in atom.terms().iter().enumerate() {
                if !term.is_var() {
                    out.push(Transition::SelectionCut {
                        view: view.id,
                        atom: ai,
                        pos,
                    });
                }
            }
        }
    }
    out
}

fn enumerate_jc(state: &State) -> Vec<Transition> {
    let mut out = Vec::new();
    for view in state.views() {
        // Occurrences per variable, in deterministic order.
        let mut occs: FxHashMap<Var, Vec<Occurrence>> = FxHashMap::default();
        for (ai, atom) in view.atoms.iter().enumerate() {
            for (pos, term) in atom.terms().iter().enumerate() {
                if let QTerm::Var(v) = term {
                    occs.entry(*v)
                        .or_default()
                        .push(Occurrence { atom: ai, pos });
                }
            }
        }
        let mut vars: Vec<(Var, Vec<Occurrence>)> = occs.into_iter().collect();
        vars.sort_unstable_by_key(|(v, _)| *v);
        for (var, occurrences) in vars {
            let atoms_spanned: FxHashSet<usize> = occurrences.iter().map(|o| o.atom).collect();
            if atoms_spanned.len() < 2 {
                continue; // no inter-atom join edge on this variable
            }
            for occ in occurrences {
                out.push(Transition::JoinCut {
                    view: view.id,
                    var,
                    occ,
                });
            }
        }
    }
    out
}

fn enumerate_vb(state: &State, cfg: &TransitionConfig) -> Vec<Transition> {
    let mut out = Vec::new();
    for view in state.views() {
        let n = view.atoms.len();
        if n <= 2 {
            continue; // Definition 3.2 requires |Nv| > 2
        }
        let graph = JoinGraph::new(&view.atoms);
        let connected: Vec<Vec<usize>> = graph.connected_subsets();
        let connected_set: FxHashSet<Vec<usize>> = connected.iter().cloned().collect();
        let mut seen_pairs: FxHashSet<(Vec<usize>, Vec<usize>)> = FxHashSet::default();
        for n1 in &connected {
            if n1.len() == n || n1.is_empty() {
                continue;
            }
            let complement: Vec<usize> = (0..n).filter(|i| !n1.contains(i)).collect();
            // Overlap extensions: subsets of n1 up to the configured size.
            for overlap in subsets_up_to(n1, cfg.vb_overlap_limit) {
                if overlap.len() == n1.len() {
                    continue; // n2 would contain n1
                }
                let mut n2: Vec<usize> = complement.clone();
                n2.extend_from_slice(&overlap);
                n2.sort_unstable();
                if !connected_set.contains(&n2) {
                    continue;
                }
                let pair = if *n1 <= n2 {
                    (n1.clone(), n2.clone())
                } else {
                    (n2.clone(), n1.clone())
                };
                if seen_pairs.insert(pair.clone()) {
                    out.push(Transition::ViewBreak {
                        view: view.id,
                        n1: pair.0,
                        n2: pair.1,
                    });
                }
            }
        }
    }
    out
}

/// All subsets of `items` with size ≤ `limit` (including the empty set).
fn subsets_up_to(items: &[usize], limit: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    if limit == 0 {
        return out;
    }
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    for _ in 0..limit.min(items.len()) {
        let mut next = Vec::new();
        for base in &frontier {
            let start = base
                .last()
                // xlint: allow(X001, reason = "base is built from items, so its last element is always found")
                .map_or(0, |&l| items.iter().position(|&x| x == l).unwrap() + 1);
            for &item in &items[start..] {
                let mut s = base.clone();
                s.push(item);
                out.push(s.clone());
                next.push(s);
            }
        }
        frontier = next;
    }
    out
}

fn enumerate_vf(state: &State) -> Vec<Transition> {
    let mut out = Vec::new();
    for class in state.fusion_classes() {
        for i in 0..class.len() {
            for j in i + 1..class.len() {
                out.push(Transition::ViewFusion {
                    keep: class[i],
                    merge: class[j],
                });
            }
        }
    }
    out
}

/// Applies a transition, producing the successor state. Panics if the
/// transition does not apply to `state` (callers enumerate from the same
/// state).
pub fn apply(state: &State, t: &Transition) -> State {
    let next = match t {
        Transition::SelectionCut { view, atom, pos } => apply_sc(state, *view, *atom, *pos),
        Transition::JoinCut { view, var, occ } => apply_jc(state, *view, *var, *occ),
        Transition::ViewBreak { view, n1, n2 } => apply_vb(state, *view, n1, n2),
        Transition::ViewFusion { keep, merge } => apply_vf(state, *keep, *merge),
    };
    debug_assert_eq!(next.check_invariants(), Ok(()));
    next
}

// ---------------------------------------------------------------------
// Selection Cut
// ---------------------------------------------------------------------

fn apply_sc(state: &State, vid: ViewId, atom: usize, pos: usize) -> State {
    let mut next = state.clone();
    let old = next.remove_view(vid);
    let constant = match old.atoms[atom].terms()[pos] {
        QTerm::Const(c) => c,
        // xlint: allow(X001, reason = "enumerate only emits SC transitions for constant atom positions")
        QTerm::Var(_) => panic!("SC target is not a constant"),
    };
    let fresh = old.fresh_var();
    let new_id = next.fresh_view_id();
    let mut atoms = old.atoms.clone();
    atoms[atom].0[pos] = QTerm::Var(fresh);
    let mut head = old.head.clone();
    head.push(fresh);
    next.insert_view(View {
        id: new_id,
        head,
        atoms,
    });
    // R′: every occurrence of v becomes π_head(v)(σ_e(v′)) — the selection
    // is the constant pinned on the new trailing argument.
    rewire(&mut next, vid, |r, args| {
        let mut a = args.to_vec();
        a.push(QTerm::Const(constant));
        let _ = r;
        vec![RewAtom {
            view: new_id,
            args: a,
        }]
    });
    next
}

// ---------------------------------------------------------------------
// Join Cut
// ---------------------------------------------------------------------

fn apply_jc(state: &State, vid: ViewId, var: Var, occ: Occurrence) -> State {
    let mut next = state.clone();
    let old = next.remove_view(vid);
    debug_assert_eq!(
        old.atoms[occ.atom].terms()[occ.pos],
        QTerm::Var(var),
        "JC occurrence does not hold the join variable"
    );
    let fresh = old.fresh_var();
    let mut atoms = old.atoms.clone();
    atoms[occ.atom].0[occ.pos] = QTerm::Var(fresh);
    let graph = JoinGraph::new(&atoms);
    let components = graph.components();
    if components.len() == 1 {
        // Case 1: still connected — one view, both variables exported.
        let new_id = next.fresh_view_id();
        let mut head = old.head.clone();
        let x_in_head = old.head_index(var);
        if x_in_head.is_none() {
            head.push(var);
        }
        head.push(fresh);
        next.insert_view(View {
            id: new_id,
            head,
            atoms,
        });
        rewire(&mut next, vid, |r, args| {
            let mut a = args.to_vec();
            match x_in_head {
                Some(k) => {
                    // head ++ [fresh]: the new column equals X's term.
                    a.push(args[k]);
                }
                None => {
                    // head ++ [X, fresh]: both columns share one join term.
                    let u = QTerm::Var(r.fresh_var());
                    a.push(u);
                    a.push(u);
                }
            }
            vec![RewAtom {
                view: new_id,
                args: a,
            }]
        });
    } else {
        // Case 2: split into the component of the renamed occurrence (which
        // holds `fresh`) and the rest (which holds `var`).
        debug_assert_eq!(components.len(), 2, "cutting one edge splits in two");
        let comp_a = components
            .iter()
            .find(|c| c.contains(&occ.atom))
            // xlint: allow(X001, reason = "cutting one join edge yields exactly two components, one holding the atom")
            .expect("renamed atom in a component")
            .clone();
        let comp_b = components
            .iter()
            .find(|c| !c.contains(&occ.atom))
            // xlint: allow(X001, reason = "cutting one join edge yields exactly two components, one holding the atom")
            .expect("second component")
            .clone();
        let x_in_head = old.head_index(var);
        let (id_a, head_a, atoms_a) = make_component(&mut next, &old, &atoms, &comp_a, fresh);
        // `var` may already be in the inherited head portion of comp_b.
        let (id_b, head_b, atoms_b) = make_component(&mut next, &old, &atoms, &comp_b, var);
        next.insert_view(View {
            id: id_a,
            head: head_a.clone(),
            atoms: atoms_a,
        });
        next.insert_view(View {
            id: id_b,
            head: head_b.clone(),
            atoms: atoms_b,
        });
        let old_ref = &old;
        rewire(&mut next, vid, move |r, args| {
            let u = match x_in_head {
                Some(k) => args[k],
                None => QTerm::Var(r.fresh_var()),
            };
            let build = |head: &[Var]| -> Vec<QTerm> {
                head.iter()
                    .map(|h| {
                        if *h == fresh || (*h == var && x_in_head.is_none()) {
                            u
                        } else {
                            // xlint: allow(X001, reason = "component heads only inherit vars present in the old view head")
                            let k = old_ref.head_index(*h).expect("inherited head var");
                            args[k]
                        }
                    })
                    .collect()
            };
            vec![
                RewAtom {
                    view: id_a,
                    args: build(&head_a),
                },
                RewAtom {
                    view: id_b,
                    args: build(&head_b),
                },
            ]
        });
    }
    next
}

/// Builds the head and atoms of one component view after a split: inherited
/// head variables (in the original order) plus the join variable if absent.
fn make_component(
    next: &mut State,
    old: &View,
    atoms: &[Atom],
    comp: &[usize],
    join_var: Var,
) -> (ViewId, Vec<Var>, Vec<Atom>) {
    let comp_atoms: Vec<Atom> = comp.iter().map(|&i| atoms[i]).collect();
    let vars: FxHashSet<Var> = comp_atoms.iter().flat_map(|a| a.vars()).collect();
    let mut head: Vec<Var> = old
        .head
        .iter()
        .copied()
        .filter(|h| vars.contains(h))
        .collect();
    if !head.contains(&join_var) {
        head.push(join_var);
    }
    let id = next.fresh_view_id();
    (id, head, comp_atoms)
}

// ---------------------------------------------------------------------
// View Break
// ---------------------------------------------------------------------

fn apply_vb(state: &State, vid: ViewId, n1: &[usize], n2: &[usize]) -> State {
    let mut next = state.clone();
    let old = next.remove_view(vid);
    let vars_of = |nodes: &[usize]| -> FxHashSet<Var> {
        nodes.iter().flat_map(|&i| old.atoms[i].vars()).collect()
    };
    let v1_vars = vars_of(n1);
    let v2_vars = vars_of(n2);
    // Shared variables, in first-occurrence order over the original body.
    // Taking the set over whole-body variable overlap (not just overlap
    // nodes) keeps the natural join equivalent even when a variable spans
    // the two parts without living in an overlap node.
    let mut shared: Vec<Var> = Vec::new();
    for atom in &old.atoms {
        for v in atom.vars() {
            if v1_vars.contains(&v) && v2_vars.contains(&v) && !shared.contains(&v) {
                shared.push(v);
            }
        }
    }
    let make_part = |next: &mut State, nodes: &[usize], vars: &FxHashSet<Var>| {
        let atoms: Vec<Atom> = nodes.iter().map(|&i| old.atoms[i]).collect();
        let mut head: Vec<Var> = old
            .head
            .iter()
            .copied()
            .filter(|h| vars.contains(h))
            .collect();
        for &s in &shared {
            if !head.contains(&s) {
                head.push(s);
            }
        }
        let id = next.fresh_view_id();
        (id, head, atoms)
    };
    let (id1, head1, atoms1) = make_part(&mut next, n1, &v1_vars);
    let (id2, head2, atoms2) = make_part(&mut next, n2, &v2_vars);
    next.insert_view(View {
        id: id1,
        head: head1.clone(),
        atoms: atoms1,
    });
    next.insert_view(View {
        id: id2,
        head: head2.clone(),
        atoms: atoms2,
    });
    let old_ref = &old;
    let shared_ref = &shared;
    rewire(&mut next, vid, move |r, args| {
        // One fresh join term per shared existential variable, reused on
        // both sides so the natural join is preserved.
        let mut joint: FxHashMap<Var, QTerm> = FxHashMap::default();
        for &s in shared_ref {
            let term = match old_ref.head_index(s) {
                Some(k) => args[k],
                None => QTerm::Var(r.fresh_var()),
            };
            joint.insert(s, term);
        }
        let build = |head: &[Var]| -> Vec<QTerm> {
            head.iter()
                .map(|h| match old_ref.head_index(*h) {
                    Some(k) => args[k],
                    None => joint[h],
                })
                .collect()
        };
        vec![
            RewAtom {
                view: id1,
                args: build(&head1),
            },
            RewAtom {
                view: id2,
                args: build(&head2),
            },
        ]
    });
    next
}

// ---------------------------------------------------------------------
// View Fusion
// ---------------------------------------------------------------------

fn apply_vf(state: &State, keep: ViewId, merge: ViewId) -> State {
    let mut next = state.clone();
    let v1 = next.remove_view(keep);
    let v2 = next.remove_view(merge);
    let rho = body_isomorphism(&v1.as_query(), &v2.as_query())
        // xlint: allow(X001, reason = "enumerate only emits VF for view pairs with isomorphic bodies")
        .expect("VF on non-isomorphic views");
    // head(v3) = head(v1) ∪ ρ(head(v2)), order: v1's head then new columns.
    let mut head = v1.head.clone();
    let mapped_v2_head: Vec<Var> = v2.head.iter().map(|h| rho[h]).collect();
    for &m in &mapped_v2_head {
        if !head.contains(&m) {
            head.push(m);
        }
    }
    let new_id = next.fresh_view_id();
    next.insert_view(View {
        id: new_id,
        head: head.clone(),
        atoms: v1.atoms.clone(),
    });
    let head_ref = &head;
    let v1_ref = &v1;
    let mapped_ref = &mapped_v2_head;
    // Rewritings over v1: inherited args, fresh (projected-away) terms for
    // the columns contributed by v2. Rewritings over v2: args placed at the
    // renamed positions.
    for r in next.rewritings_mut() {
        let mut i = 0;
        while i < r.atoms.len() {
            if r.atoms[i].view == keep {
                let mut args = r.atoms[i].args.clone();
                for _ in v1_ref.head.len()..head_ref.len() {
                    args.push(QTerm::Var(r.fresh_var()));
                }
                r.atoms[i] = RewAtom { view: new_id, args };
            } else if r.atoms[i].view == merge {
                let old_args = r.atoms[i].args.clone();
                let args: Vec<QTerm> = head_ref
                    .iter()
                    .map(|w| match mapped_ref.iter().position(|m| m == w) {
                        Some(j) => old_args[j],
                        None => QTerm::Var(r.fresh_var()),
                    })
                    .collect();
                r.atoms[i] = RewAtom { view: new_id, args };
            }
            i += 1;
        }
    }
    next
}

// ---------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------

/// Replaces every rewriting atom over `target` using `f`, which receives
/// the rewriting (for fresh variables) and the old argument list and
/// returns the replacement atoms.
fn rewire(
    state: &mut State,
    target: ViewId,
    mut f: impl FnMut(&mut Rewriting, &[QTerm]) -> Vec<RewAtom>,
) {
    for r in state.rewritings_mut() {
        let mut i = 0;
        while i < r.atoms.len() {
            if r.atoms[i].view == target {
                let args = r.atoms[i].args.clone();
                let replacement = f(r, &args);
                r.atoms.splice(i..=i, replacement.clone());
                i += replacement.len();
            } else {
                i += 1;
            }
        }
    }
}

use crate::state::Rewriting;

/// A constant handle used in tests.
#[allow(dead_code)]
fn _cid(i: u32) -> Id {
    Id(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unfold::unfold;
    use rdf_model::Dictionary;
    use rdf_query::containment::equivalent;
    use rdf_query::parser::parse_query;
    use rdf_query::ConjunctiveQuery;

    fn q1(dict: &mut Dictionary) -> ConjunctiveQuery {
        parse_query(
            "q1(X, Z) :- t(X, <hasPainted>, <starryNight>), t(X, <isParentOf>, Y), \
             t(Y, <hasPainted>, Z)",
            dict,
        )
        .unwrap()
        .query
    }

    fn assert_rewritings_equivalent(state: &State, queries: &[ConjunctiveQuery]) {
        for (i, q) in queries.iter().enumerate() {
            let unfolded = unfold(state, i);
            assert!(
                equivalent(&unfolded, q),
                "rewriting {i} not equivalent after transition:\n{unfolded:?}\nvs\n{q:?}"
            );
        }
    }

    #[test]
    fn figure1_transition_sequence() {
        // Reproduces the paper's Figure 1: S0 →VB S1 →SC S2 →JC →JC S3 →VF
        // →VF S4, checking sizes and rewriting equivalence at every step.
        let mut dict = Dictionary::new();
        let q = q1(&mut dict);
        let queries = vec![q.clone()];
        let cfg = TransitionConfig::default();

        let s0 = State::initial(&queries);
        assert_eq!(s0.view_count(), 1);

        // VB on v1 into {a0, a1} and {a1, a2} (overlap on the middle atom).
        let vbs = enumerate(&s0, TransitionKind::Vb, &cfg);
        let vb = vbs
            .iter()
            .find(|t| {
                matches!(t, Transition::ViewBreak { n1, n2, .. }
                if n1 == &vec![0, 1] && n2 == &vec![1, 2])
            })
            .expect("Figure 1's view break must be enumerated");
        let s1 = apply(&s0, vb);
        assert_eq!(s1.view_count(), 2);
        assert_rewritings_equivalent(&s1, &queries);

        // SC on the starryNight constant of the first part.
        let scs = enumerate(&s1, TransitionKind::Sc, &cfg);
        let star = dict.lookup_uri("starryNight").unwrap();
        let sc = scs
            .iter()
            .find(|t| match t {
                Transition::SelectionCut { view, atom, pos } => {
                    s1.view(*view).atoms[*atom].terms()[*pos] == QTerm::Const(star)
                }
                _ => false,
            })
            .expect("starryNight cut available");
        let s2 = apply(&s1, sc);
        assert_eq!(s2.view_count(), 2);
        assert_rewritings_equivalent(&s2, &queries);

        // JC on the subject join of the starryNight view: splits it.
        let jcs = enumerate(&s2, TransitionKind::Jc, &cfg);
        let jc = jcs
            .iter()
            .find(|t| match t {
                Transition::JoinCut { view, .. } => {
                    s2.view(*view).atoms.len() == 2
                        && s2
                            .view(*view)
                            .atoms
                            .iter()
                            .all(|a| a.terms().iter().all(|x| x != &QTerm::Const(star)))
                }
                _ => false,
            })
            .expect("join cut on the relaxed view");
        let s3a = apply(&s2, jc);
        assert_eq!(s3a.view_count(), 3);
        assert_rewritings_equivalent(&s3a, &queries);

        // JC on the remaining two-atom view → S3 with four 1-atom views.
        let jcs = enumerate(&s3a, TransitionKind::Jc, &cfg);
        let jc2 = jcs
            .iter()
            .find(|t| match t {
                Transition::JoinCut { view, .. } => s3a.view(*view).atoms.len() == 2,
                _ => false,
            })
            .expect("second join cut");
        let s3 = apply(&s3a, jc2);
        assert_eq!(s3.view_count(), 4);
        assert_rewritings_equivalent(&s3, &queries);

        // Two fusions: the two hasPainted atoms fuse, then the parentOf
        // pair has no partner — Figure 1 fuses v5/v8 and v6/v7; here the
        // fusable pairs depend on which occurrences were cut, so just apply
        // all available fusions.
        let mut s4 = s3.clone();
        loop {
            let vfs = enumerate(&s4, TransitionKind::Vf, &cfg);
            let Some(vf) = vfs.first() else { break };
            s4 = apply(&s4, vf);
            assert_rewritings_equivalent(&s4, &queries);
        }
        assert!(
            s4.view_count() < s3.view_count(),
            "at least one fusion applies"
        );
    }

    #[test]
    fn sc_pins_constant_in_rewriting() {
        let mut dict = Dictionary::new();
        let q = parse_query("q(X) :- t(X, <p>, <c>)", &mut dict)
            .unwrap()
            .query;
        let queries = vec![q.clone()];
        let s0 = State::initial(&queries);
        let scs = enumerate_sc(&s0);
        assert_eq!(scs.len(), 2); // <p> and <c>
        for sc in &scs {
            let s1 = apply(&s0, sc);
            assert_eq!(s1.view_count(), 1);
            let v = s1.views().next().unwrap();
            assert_eq!(v.head.len(), 2);
            let r = &s1.rewritings()[0];
            assert!(matches!(r.atoms[0].args[1], QTerm::Const(_)));
            assert_rewritings_equivalent(&s1, &queries);
        }
    }

    #[test]
    fn jc_connected_case_keeps_one_view() {
        // Triangle: cutting one edge leaves the view connected.
        let mut dict = Dictionary::new();
        let q = parse_query(
            "q(X) :- t(X, <p>, Y), t(Y, <p>, Z), t(Z, <p>, X)",
            &mut dict,
        )
        .unwrap()
        .query;
        let queries = vec![q.clone()];
        let s0 = State::initial(&queries);
        let jcs = enumerate_jc(&s0);
        // Each of X, Y, Z has two occurrences, all cuttable: 6 cuts.
        assert_eq!(jcs.len(), 6);
        for jc in &jcs {
            let s1 = apply(&s0, jc);
            assert_eq!(s1.view_count(), 1, "triangle stays connected");
            let v = s1.views().next().unwrap();
            // Cutting the head variable X adds only the fresh column (X is
            // already exported); cutting Y or Z exports both.
            let expected = match jc {
                Transition::JoinCut { var, .. } if *var == Var(0) => 2,
                _ => 3,
            };
            assert_eq!(v.head.len(), expected, "cut {jc:?}");
            assert_rewritings_equivalent(&s1, &queries);
        }
    }

    #[test]
    fn jc_split_case_divides_view() {
        let mut dict = Dictionary::new();
        let q = parse_query("q(X, Z) :- t(X, <p>, Y), t(Y, <q>, Z)", &mut dict)
            .unwrap()
            .query;
        let queries = vec![q.clone()];
        let s0 = State::initial(&queries);
        for jc in enumerate_jc(&s0) {
            let s1 = apply(&s0, &jc);
            assert_eq!(s1.view_count(), 2);
            assert_rewritings_equivalent(&s1, &queries);
            // Each part exports its inherited head var plus the join var.
            for v in s1.views() {
                assert_eq!(v.atoms.len(), 1);
                assert_eq!(v.head.len(), 2);
            }
        }
    }

    #[test]
    fn jc_with_head_join_var() {
        // The join variable is already a head variable: the rewiring reuses
        // its argument term instead of a fresh join variable.
        let mut dict = Dictionary::new();
        let q = parse_query("q(Y) :- t(X, <p>, Y), t(Y, <q>, Z)", &mut dict)
            .unwrap()
            .query;
        let queries = vec![q.clone()];
        let s0 = State::initial(&queries);
        for jc in enumerate_jc(&s0) {
            let s1 = apply(&s0, &jc);
            assert_rewritings_equivalent(&s1, &queries);
        }
    }

    #[test]
    fn vb_disjoint_and_overlapping() {
        let mut dict = Dictionary::new();
        let q = q1(&mut dict);
        let queries = vec![q.clone()];
        let s0 = State::initial(&queries);
        let vbs = enumerate_vb(
            &s0,
            &TransitionConfig {
                vb_overlap_limit: 1,
            },
        );
        // Path graph 0-1-2: disjoint splits {0|12}, {01|2}; overlap-1
        // covers: {01|12}. ({0,1} with overlap from the other side etc. all
        // dedup to these three.)
        assert_eq!(vbs.len(), 3);
        for vb in &vbs {
            let s1 = apply(&s0, vb);
            assert_eq!(s1.view_count(), 2);
            assert_rewritings_equivalent(&s1, &queries);
        }
    }

    #[test]
    fn vb_overlap_limit_zero_is_disjoint_only() {
        let mut dict = Dictionary::new();
        let q = q1(&mut dict);
        let s0 = State::initial(&[q]);
        let vbs = enumerate_vb(
            &s0,
            &TransitionConfig {
                vb_overlap_limit: 0,
            },
        );
        assert_eq!(vbs.len(), 2);
    }

    #[test]
    fn vf_merges_heads_through_renaming() {
        let mut dict = Dictionary::new();
        let qa = parse_query("qa(X) :- t(X, <p>, Y)", &mut dict)
            .unwrap()
            .query;
        let qb = parse_query("qb(B) :- t(A, <p>, B)", &mut dict)
            .unwrap()
            .query;
        let queries = vec![qa.clone(), qb.clone()];
        let s0 = State::initial(&queries);
        let vfs = enumerate_vf(&s0);
        assert_eq!(vfs.len(), 1);
        let s1 = apply(&s0, &vfs[0]);
        assert_eq!(s1.view_count(), 1);
        let v = s1.views().next().unwrap();
        // qa exports the subject, qb the object: the fused head has both.
        assert_eq!(v.head.len(), 2);
        assert_rewritings_equivalent(&s1, &queries);
    }

    #[test]
    fn vf_identical_heads_do_not_grow() {
        let mut dict = Dictionary::new();
        let qa = parse_query("qa(X) :- t(X, <p>, Y)", &mut dict)
            .unwrap()
            .query;
        let qb = parse_query("qb(A) :- t(A, <p>, B)", &mut dict)
            .unwrap()
            .query;
        let queries = vec![qa.clone(), qb.clone()];
        let s0 = State::initial(&queries);
        let s1 = apply(&s0, &enumerate_vf(&s0)[0]);
        let v = s1.views().next().unwrap();
        assert_eq!(v.head.len(), 1);
        assert_rewritings_equivalent(&s1, &queries);
    }

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets_up_to(&[1, 2, 3], 0), vec![Vec::<usize>::new()]);
        let s1 = subsets_up_to(&[1, 2, 3], 1);
        assert_eq!(s1.len(), 4); // {}, {1}, {2}, {3}
        let s2 = subsets_up_to(&[1, 2, 3], 2);
        assert_eq!(s2.len(), 7); // + {12},{13},{23}
    }

    #[test]
    fn stratified_path_reaches_full_decomposition() {
        // From q1, a VB* SC* JC* VF* path must reach the state of 1-atom
        // constant-free views (Theorem 5.2's flavor, on one example).
        let mut dict = Dictionary::new();
        let q = q1(&mut dict);
        let queries = vec![q.clone()];
        let cfg = TransitionConfig::default();
        let mut s = State::initial(&queries);
        // SC everything.
        loop {
            let scs = enumerate(&s, TransitionKind::Sc, &cfg);
            let Some(t) = scs.first() else { break };
            s = apply(&s, t);
        }
        // JC everything.
        loop {
            let jcs = enumerate(&s, TransitionKind::Jc, &cfg);
            let Some(t) = jcs.first() else { break };
            s = apply(&s, t);
        }
        // VF everything.
        loop {
            let vfs = enumerate(&s, TransitionKind::Vf, &cfg);
            let Some(t) = vfs.first() else { break };
            s = apply(&s, t);
        }
        assert_rewritings_equivalent(&s, &queries);
        // All views are single-atom and constant-free; all three atoms had
        // the same shape, so fusion collapses them into one triple-table
        // view.
        assert_eq!(s.view_count(), 1);
        assert!(s.views().next().unwrap().is_triple_table());
    }
}
