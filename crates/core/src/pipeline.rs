//! End-to-end view selection, including the RDF entailment scenarios of
//! Section 4.3.
//!
//! Given a store, an optional RDF Schema and a workload, [`select_views`]:
//!
//! 1. minimizes and normalizes the workload queries (Definition 2.1
//!    assumes minimality);
//! 2. prepares the statistics catalog for the chosen [`ReasoningMode`]:
//!    * [`ReasoningMode::Plain`] — ignore entailment;
//!    * [`ReasoningMode::Saturation`] — statistics from a saturated copy
//!      of the store;
//!    * [`ReasoningMode::PreReformulation`] — reformulate every workload
//!      query and search over all branches (the paper's baseline, whose
//!      search space explodes with `|Qr|`);
//!    * [`ReasoningMode::PostReformulation`] — the paper's contribution:
//!      per-atom reformulated statistics, search over the *original*
//!      workload, and reformulation of the recommended views afterwards
//!      (Theorem 4.2 makes materializing the reformulated views over the
//!      original store equivalent to materializing the plain views over
//!      the saturated store);
//! 3. runs the configured search;
//! 4. packages the recommended views, their rewritings, and the
//!    *materialization definitions* (reformulated where applicable).

use rdf_model::{Dictionary, TripleStore};
use rdf_query::{minimize, ConjunctiveQuery, UnionQuery};
use rdf_schema::{saturated_copy, Schema, VocabIds};
use rdf_stats::{collect_stats, collect_stats_post_reform, StatsCatalog};

use crate::cost::{CostModel, CostWeights};
use crate::search::{search, SearchConfig, SearchOutcome};
use crate::state::{State, View};

/// How implicit triples participate in view selection (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReasoningMode {
    /// No entailment: only explicit triples count.
    #[default]
    Plain,
    /// Statistics against a saturated database.
    Saturation,
    /// Reformulate the workload before the search.
    PreReformulation,
    /// Reformulate statistics before and views after the search.
    PostReformulation,
}

/// Options for [`select_views`].
#[derive(Debug, Clone, Default)]
pub struct SelectionOptions {
    /// Cost weights (`cs`, `cr`, `cm`, `c1`, `c2`, `f`).
    pub weights: CostWeights,
    /// Auto-scale `cm` against the initial state as the paper does.
    pub calibrate_cm: bool,
    /// Search strategy and heuristics.
    pub search: SearchConfig,
    /// Entailment handling.
    pub reasoning: ReasoningMode,
}

impl SelectionOptions {
    /// The paper's preferred configuration: DFS-AVF-STV with calibrated
    /// `cm`.
    pub fn recommended() -> Self {
        Self {
            calibrate_cm: true,
            ..Default::default()
        }
    }
}

/// The output of view selection.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The effective workload the search ran on (minimized; reformulation
    /// branches expanded in pre-reformulation mode).
    pub workload: Vec<ConjunctiveQuery>,
    /// For each effective workload entry, the index of the original query
    /// it answers (identity except in pre-reformulation).
    pub branch_of: Vec<usize>,
    /// The search result; `outcome.best_state` holds views + rewritings.
    pub outcome: SearchOutcome,
    /// The recommended views (from the best state), in id order.
    pub views: Vec<View>,
    /// What to actually materialize for each recommended view: the view
    /// itself, or its reformulation in post-reformulation mode.
    pub materialization: Vec<UnionQuery>,
    /// The statistics catalog used (exposed for inspection/tests).
    pub catalog: StatsCatalog,
}

impl Recommendation {
    /// Relative cost reduction achieved by the search.
    pub fn rcr(&self) -> f64 {
        self.outcome.rcr()
    }
}

/// Runs view selection over a store and workload.
///
/// `schema` is required for every mode except [`ReasoningMode::Plain`].
pub fn select_views(
    store: &TripleStore,
    dict: &Dictionary,
    schema: Option<(&Schema, &VocabIds)>,
    workload: &[ConjunctiveQuery],
    options: &SelectionOptions,
) -> Recommendation {
    // Definition 2.1: queries are assumed minimal.
    let minimized: Vec<ConjunctiveQuery> =
        workload.iter().map(|q| minimize(q).normalized()).collect();

    let (effective, branch_of, catalog): (Vec<ConjunctiveQuery>, Vec<usize>, StatsCatalog) =
        match options.reasoning {
            ReasoningMode::Plain => {
                let cat = collect_stats(store, dict, &minimized);
                let branch_of = (0..minimized.len()).collect();
                (minimized, branch_of, cat)
            }
            ReasoningMode::Saturation => {
                let (schema, vocab) = schema.expect("saturation needs a schema");
                let saturated = saturated_copy(store, schema, vocab);
                let cat = collect_stats(&saturated, dict, &minimized);
                let branch_of = (0..minimized.len()).collect();
                (minimized, branch_of, cat)
            }
            ReasoningMode::PreReformulation => {
                let (schema, vocab) = schema.expect("pre-reformulation needs a schema");
                let mut effective = Vec::new();
                let mut branch_of = Vec::new();
                for (qi, q) in minimized.iter().enumerate() {
                    for branch in rdf_reform::reformulate(q, schema, vocab) {
                        effective.push(branch.normalized());
                        branch_of.push(qi);
                    }
                }
                let cat = collect_stats(store, dict, &effective);
                (effective, branch_of, cat)
            }
            ReasoningMode::PostReformulation => {
                let (schema, vocab) = schema.expect("post-reformulation needs a schema");
                let cat = collect_stats_post_reform(store, dict, &minimized, schema, vocab);
                let branch_of = (0..minimized.len()).collect();
                (minimized, branch_of, cat)
            }
        };

    let s0 = State::initial(&effective);
    let mut model = CostModel::new(&catalog, options.weights);
    if options.calibrate_cm {
        model.calibrate_cm(&s0);
    }
    let outcome = search(s0, &model, &options.search);

    let views: Vec<View> = outcome.best_state.views().cloned().collect();
    let materialization: Vec<UnionQuery> = views
        .iter()
        .map(|v| match options.reasoning {
            ReasoningMode::PostReformulation => {
                let (schema, vocab) = schema.expect("post-reformulation needs a schema");
                rdf_reform::reformulate(&v.as_query(), schema, vocab)
            }
            _ => UnionQuery::singleton(v.as_query()),
        })
        .collect();

    Recommendation {
        workload: effective,
        branch_of,
        outcome,
        views,
        materialization,
        catalog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Dataset;
    use rdf_query::parser::parse_query;
    use rdf_schema::SchemaStatement;

    fn museum_db() -> (Dataset, Schema, VocabIds) {
        let mut db = Dataset::new();
        let vocab = VocabIds::intern(db.dict_mut());
        let painting = db.dict_mut().intern_uri("painting");
        let picture = db.dict_mut().intern_uri("picture");
        let is_exp_in = db.dict_mut().intern_uri("isExpIn");
        let is_locat_in = db.dict_mut().intern_uri("isLocatIn");
        let mut schema = Schema::new();
        schema.add(SchemaStatement::SubClassOf(painting, picture));
        schema.add(SchemaStatement::SubPropertyOf(is_exp_in, is_locat_in));
        for i in 0..12 {
            let x = db.dict_mut().intern_uri(&format!("item{i}"));
            let class = if i % 2 == 0 { painting } else { picture };
            db.store_mut().insert([x, vocab.rdf_type, class]);
            let museum = db.dict_mut().intern_uri(&format!("museum{}", i % 4));
            let prop = if i % 3 == 0 { is_exp_in } else { is_locat_in };
            db.store_mut().insert([x, prop, museum]);
        }
        (db, schema, vocab)
    }

    fn workload(db: &mut Dataset) -> Vec<ConjunctiveQuery> {
        vec![
            parse_query(
                "q(X1, X2) :- t(X1, rdf:type, picture), t(X1, isLocatIn, X2)",
                db.dict_mut(),
            )
            .unwrap()
            .query,
        ]
    }

    #[test]
    fn plain_selection_runs() {
        let (mut db, _schema, _vocab) = museum_db();
        let queries = workload(&mut db);
        let rec = select_views(
            db.store(),
            db.dict(),
            None,
            &queries,
            &SelectionOptions::recommended(),
        );
        assert!(!rec.views.is_empty());
        assert_eq!(rec.branch_of, vec![0]);
        assert!(rec.rcr() >= 0.0);
        assert_eq!(rec.views.len(), rec.materialization.len());
    }

    #[test]
    fn post_reformulation_reformulates_views() {
        let (mut db, schema, vocab) = museum_db();
        let queries = workload(&mut db);
        let rec = select_views(
            db.store(),
            db.dict(),
            Some((&schema, &vocab)),
            &queries,
            &SelectionOptions {
                reasoning: ReasoningMode::PostReformulation,
                calibrate_cm: true,
                ..Default::default()
            },
        );
        // At least one materialization union must have multiple branches
        // (the workload touches both the class and the property hierarchy).
        assert!(rec.materialization.iter().any(|u| u.len() > 1));
    }

    #[test]
    fn pre_reformulation_expands_workload() {
        let (mut db, schema, vocab) = museum_db();
        let queries = workload(&mut db);
        let rec = select_views(
            db.store(),
            db.dict(),
            Some((&schema, &vocab)),
            &queries,
            &SelectionOptions {
                reasoning: ReasoningMode::PreReformulation,
                calibrate_cm: true,
                ..Default::default()
            },
        );
        assert!(rec.workload.len() > 1, "reformulation adds branches");
        assert!(rec.branch_of.iter().all(|&b| b == 0));
        // Every branch keeps a rewriting in the best state.
        assert_eq!(
            rec.outcome.best_state.rewritings().len(),
            rec.workload.len()
        );
    }

    #[test]
    fn saturation_and_post_reformulation_agree_on_best_cost() {
        // Section 4.3: "we perform the search using the same initial state
        // and statistics, and get the same best state as in the database
        // saturation approach".
        let (mut db, schema, vocab) = museum_db();
        let queries = workload(&mut db);
        let mk = |mode| SelectionOptions {
            reasoning: mode,
            calibrate_cm: false,
            ..Default::default()
        };
        let sat = select_views(
            db.store(),
            db.dict(),
            Some((&schema, &vocab)),
            &queries,
            &mk(ReasoningMode::Saturation),
        );
        let post = select_views(
            db.store(),
            db.dict(),
            Some((&schema, &vocab)),
            &queries,
            &mk(ReasoningMode::PostReformulation),
        );
        let rel = (sat.outcome.best_cost - post.outcome.best_cost).abs()
            / sat.outcome.best_cost.max(1e-9);
        assert!(
            rel < 1e-6,
            "sat {} vs post {}",
            sat.outcome.best_cost,
            post.outcome.best_cost
        );
        assert_eq!(
            sat.outcome.best_state.signature(),
            post.outcome.best_state.signature()
        );
    }
}
