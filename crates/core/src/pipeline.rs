//! End-to-end view selection, including the RDF entailment scenarios of
//! Section 4.3.
//!
//! The pipeline is split in two so that a long-lived advisor session can
//! cache the expensive per-database work and share it across searches:
//!
//! 1. [`Preparation`] — built once per database/mode pair: the saturated
//!    copy of the store (saturation mode), the store-level statistics, and
//!    an incrementally-growing [`StatsCatalog`]. Re-running a workload
//!    whose atom shapes are already recorded touches the store **zero**
//!    times.
//! 2. [`select_views_session`] — minimizes the workload, expands
//!    reformulation branches where applicable, tops up the catalog, runs
//!    the configured search and packages a [`Recommendation`].
//!
//! The one-shot entry points remain: [`try_select_views`] builds a
//! throwaway [`Preparation`] and runs once; [`select_views`] is the
//! original panicking signature kept for backward compatibility.
//!
//! Reasoning modes ([`ReasoningMode`], Section 4.3):
//!
//! * [`ReasoningMode::Plain`] — ignore entailment;
//! * [`ReasoningMode::Saturation`] — statistics from a saturated copy
//!   of the store;
//! * [`ReasoningMode::PreReformulation`] — reformulate every workload
//!   query and search over all branches (the paper's baseline, whose
//!   search space explodes with `|Qr|`);
//! * [`ReasoningMode::PostReformulation`] — the paper's contribution:
//!   per-atom reformulated statistics, search over the *original*
//!   workload, and reformulation of the recommended views afterwards
//!   (Theorem 4.2 makes materializing the reformulated views over the
//!   original store equivalent to materializing the plain views over
//!   the saturated store).

use std::sync::Arc;

use rdf_model::{Dictionary, TripleStore};
use rdf_query::{minimize, ConjunctiveQuery, UnionQuery};
use rdf_schema::{saturated_copy, Schema, VocabIds};
use rdf_stats::StatsCatalog;

use crate::cost::{CostModel, CostWeights};
use crate::error::SelectionError;
use crate::search::{search_seeded, SearchConfig, SearchOutcome};
use crate::state::{ReseedSource, State, View};

/// How implicit triples participate in view selection (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReasoningMode {
    /// No entailment: only explicit triples count.
    #[default]
    Plain,
    /// Statistics against a saturated database.
    Saturation,
    /// Reformulate the workload before the search.
    PreReformulation,
    /// Reformulate statistics before and views after the search.
    PostReformulation,
}

impl ReasoningMode {
    /// Whether this mode needs an RDF Schema.
    pub fn needs_schema(self) -> bool {
        !matches!(self, ReasoningMode::Plain)
    }
}

/// Options for [`select_views`].
#[derive(Debug, Clone, Default)]
pub struct SelectionOptions {
    /// Cost weights (`cs`, `cr`, `cm`, `c1`, `c2`, `f`).
    pub weights: CostWeights,
    /// Auto-scale `cm` against the initial state as the paper does.
    pub calibrate_cm: bool,
    /// Search strategy and heuristics.
    pub search: SearchConfig,
    /// Entailment handling.
    pub reasoning: ReasoningMode,
    /// Treat an exhausted state/time budget as an error
    /// ([`SelectionError::BudgetExhausted`]) instead of returning the best
    /// state found so far.
    pub fail_on_exhausted_budget: bool,
    /// Seed the search frontier from the session's previous best state
    /// when the workload differs by at most one query (±1 delta). The
    /// warm-started search explores the transition closure of that seed —
    /// a local search around the previous optimum that creates far fewer
    /// states than a cold run. `Advisor::recommend_incremental` turns this
    /// on; plain `recommend` keeps the cold, exhaustive behavior.
    pub warm_start: bool,
}

impl SelectionOptions {
    /// The paper's preferred configuration: DFS-AVF-STV with calibrated
    /// `cm`.
    pub fn recommended() -> Self {
        Self {
            calibrate_cm: true,
            ..Default::default()
        }
    }
}

/// The cached per-database artifacts of a view-selection session: the
/// saturated copy of the store (when the mode needs one) and the
/// statistics catalog, grown incrementally as workloads arrive.
///
/// Building one runs the expensive store-level work exactly once;
/// [`Preparation::extend`] then only counts atom shapes the catalog has
/// not seen yet, so repeated searches over similar workloads skip the
/// store entirely. The counters ([`Preparation::stats_collections`],
/// [`Preparation::saturation_runs`]) exist so callers — and tests — can
/// verify that reuse actually happens.
#[derive(Debug, Clone)]
pub struct Preparation {
    mode: ReasoningMode,
    saturated: Option<TripleStore>,
    // Shared copy-on-write with the `Recommendation`s handed out:
    // `extend` only deep-clones when a recommendation still holds the
    // previous snapshot.
    catalog: Arc<StatsCatalog>,
    stats_collections: usize,
    saturation_runs: usize,
    // The store's version stamp at preparation time. Session entry points
    // compare it against the store they are handed: a mismatch means the
    // data changed underneath the cached statistics and surfaces as
    // `SelectionError::StaleSession` instead of a silently-stale result.
    store_version: u64,
    // The last session search's effective workload and best state — the
    // warm-start cache consumed by `SelectionOptions::warm_start` searches
    // over ±1-query workload deltas.
    warm: Option<Arc<WarmStart>>,
}

/// The warm-start cache entry: the effective (minimized) workload of the
/// session's last search and its best state.
#[derive(Debug)]
struct WarmStart {
    workload: Vec<ConjunctiveQuery>,
    best: State,
}

impl Preparation {
    /// Runs the per-database preparation for `mode`: saturates the store
    /// (saturation mode), derives the saturated statistics without
    /// saturating (post-reformulation), or records plain store-level
    /// statistics.
    ///
    /// Returns [`SelectionError::SchemaRequired`] when `mode` needs a
    /// schema and none is given.
    pub fn new(
        store: &TripleStore,
        dict: &Dictionary,
        schema: Option<(&Schema, &VocabIds)>,
        mode: ReasoningMode,
    ) -> Result<Self, SelectionError> {
        if mode.needs_schema() && schema.is_none() {
            return Err(SelectionError::SchemaRequired(mode));
        }
        let mut saturation_runs = 0;
        let (saturated, catalog) = match mode {
            ReasoningMode::Plain | ReasoningMode::PreReformulation => {
                (None, StatsCatalog::store_level(store, dict))
            }
            ReasoningMode::Saturation => {
                // xlint: allow(X001, reason = "SchemaRequired is returned above for reasoning modes without a schema")
                let (schema, vocab) = schema.expect("checked above");
                let sat = saturated_copy(store, schema, vocab);
                saturation_runs += 1;
                let cat = StatsCatalog::store_level(&sat, dict);
                (Some(sat), cat)
            }
            ReasoningMode::PostReformulation => {
                // xlint: allow(X001, reason = "SchemaRequired is returned above for reasoning modes without a schema")
                let (schema, vocab) = schema.expect("checked above");
                let triples = rdf_stats::postreform::saturated_triples(store, schema, vocab);
                let cat = StatsCatalog::store_level_from_triples(triples.into_iter(), dict);
                (None, cat)
            }
        };
        Ok(Self {
            mode,
            saturated,
            catalog: Arc::new(catalog),
            stats_collections: 0,
            saturation_runs,
            store_version: store.version(),
            warm: None,
        })
    }

    /// The reasoning mode this session was prepared for.
    pub fn reasoning(&self) -> ReasoningMode {
        self.mode
    }

    /// The store version this session was prepared against.
    pub fn store_version(&self) -> u64 {
        self.store_version
    }

    /// Checks that `store` has not changed since preparation. Returns
    /// [`SelectionError::StaleSession`] when the version stamps differ —
    /// the cached catalog (and saturated copy) would describe data that no
    /// longer exists. Every session entry point calls this; a stale
    /// session recovers via [`Preparation::refresh`].
    pub fn ensure_fresh(&self, store: &TripleStore) -> Result<(), SelectionError> {
        if store.version() != self.store_version {
            return Err(SelectionError::StaleSession {
                prepared: self.store_version,
                current: store.version(),
            });
        }
        Ok(())
    }

    /// Re-runs the per-database preparation against the store's current
    /// contents: re-saturates (saturation mode), rebuilds the store-level
    /// statistics, and records the new version stamp. The warm-start cache
    /// is dropped — its best state was optimized for data that changed.
    /// The session counters carry over (cumulative), so `saturation_runs`
    /// counts one extra run per refresh.
    pub fn refresh(
        &mut self,
        store: &TripleStore,
        dict: &Dictionary,
        schema: Option<(&Schema, &VocabIds)>,
    ) -> Result<(), SelectionError> {
        let mut fresh = Preparation::new(store, dict, schema, self.mode)?;
        fresh.stats_collections += self.stats_collections;
        fresh.saturation_runs += self.saturation_runs;
        *self = fresh;
        Ok(())
    }

    /// The statistics catalog accumulated so far.
    pub fn catalog(&self) -> &StatsCatalog {
        &self.catalog
    }

    /// The cached saturated copy (saturation mode only).
    pub fn saturated_store(&self) -> Option<&TripleStore> {
        self.saturated.as_ref()
    }

    /// Cumulative number of atom shapes counted against the store. Stays
    /// flat across [`Preparation::extend`] calls whose workload shapes are
    /// already recorded — the observable proof that a session skips
    /// re-collection.
    pub fn stats_collections(&self) -> usize {
        self.stats_collections
    }

    /// How many times the store was saturated (once per preparation or
    /// [`Preparation::refresh`] in saturation mode — never once per call).
    pub fn saturation_runs(&self) -> usize {
        self.saturation_runs
    }

    /// Tops up the catalog with the counts for `queries` that it does not
    /// record yet; returns how many atom shapes were newly counted.
    pub fn extend(
        &mut self,
        store: &TripleStore,
        schema: Option<(&Schema, &VocabIds)>,
        queries: &[ConjunctiveQuery],
    ) -> Result<usize, SelectionError> {
        // Check coverage first: the common warm-session case must not
        // deep-clone a catalog that recommendations still share.
        if rdf_stats::stats_cover(&self.catalog, queries) {
            return Ok(0);
        }
        let catalog = Arc::make_mut(&mut self.catalog);
        let added = match self.mode {
            ReasoningMode::Plain | ReasoningMode::PreReformulation => {
                rdf_stats::extend_stats(catalog, store, queries)
            }
            ReasoningMode::Saturation => {
                // xlint: allow(X001, reason = "Preparation::new always builds the saturated copy in Saturation mode")
                let sat = self.saturated.as_ref().expect("prepared with saturation");
                rdf_stats::extend_stats(catalog, sat, queries)
            }
            ReasoningMode::PostReformulation => {
                let (schema, vocab) = schema.ok_or(SelectionError::SchemaRequired(self.mode))?;
                rdf_stats::extend_stats_post_reform(catalog, store, queries, schema, vocab)
            }
        };
        self.stats_collections += added;
        Ok(added)
    }

    /// Records a finished session search as the warm-start cache entry.
    pub(crate) fn note_warm_start(&mut self, effective: &[ConjunctiveQuery], best: &State) {
        self.warm = Some(Arc::new(WarmStart {
            workload: effective.to_vec(),
            best: best.clone(),
        }));
    }

    /// Whether the session holds a warm-start cache entry (primed by any
    /// successful non-partitioned session search).
    pub fn has_warm_start(&self) -> bool {
        self.warm.is_some()
    }

    /// Builds a warm-start seed for `effective` from the cached previous
    /// best state, if the two workloads differ by at most one query in
    /// each direction (±1 delta). Matched queries transplant their
    /// previous rewriting; an added query starts from its initial
    /// single-scan view; views no surviving rewriting uses are dropped.
    /// Returns `None` (cold start) when no cache entry exists or the delta
    /// is larger.
    pub(crate) fn warm_seed(&self, effective: &[ConjunctiveQuery]) -> Option<State> {
        let warm = self.warm.as_deref()?;
        let mut used = vec![false; warm.workload.len()];
        let mut sources: Vec<ReseedSource> = Vec::with_capacity(effective.len());
        let mut fresh = 0usize;
        for q in effective {
            let mut source = ReseedSource::Fresh;
            for (j, old) in warm.workload.iter().enumerate() {
                if !used[j] && old == q {
                    used[j] = true;
                    source = ReseedSource::Carry(j);
                    break;
                }
            }
            if source == ReseedSource::Fresh {
                fresh += 1;
            }
            sources.push(source);
        }
        let removed = used.iter().filter(|u| !**u).count();
        if fresh > 1 || removed > 1 {
            return None;
        }
        Some(State::reseed(&warm.best, &sources, effective))
    }
}

/// The output of view selection.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The effective workload the search ran on (minimized; reformulation
    /// branches expanded in pre-reformulation mode).
    pub workload: Vec<ConjunctiveQuery>,
    /// For each effective workload entry, the index of the original query
    /// it answers (identity except in pre-reformulation).
    pub branch_of: Vec<usize>,
    /// The search result; `outcome.best_state` holds views + rewritings.
    pub outcome: SearchOutcome,
    /// The recommended views (from the best state), in id order.
    pub views: Vec<View>,
    /// What to actually materialize for each recommended view: the view
    /// itself, or its reformulation in post-reformulation mode.
    pub materialization: Vec<UnionQuery>,
    /// The statistics catalog used (exposed for inspection/tests; shared
    /// copy-on-write with the advisor session that produced it).
    pub catalog: Arc<StatsCatalog>,
}

impl Recommendation {
    /// Relative cost reduction achieved by the search.
    pub fn rcr(&self) -> f64 {
        self.outcome.rcr()
    }

    /// Number of original workload queries this recommendation answers.
    pub fn original_query_count(&self) -> usize {
        self.branch_of.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// Minimizes the workload and expands reformulation branches where the
/// mode calls for it. Returns the effective workload plus the map from
/// effective entries back to original query indexes.
pub(crate) fn effective_workload(
    mode: ReasoningMode,
    schema: Option<(&Schema, &VocabIds)>,
    workload: &[ConjunctiveQuery],
) -> Result<(Vec<ConjunctiveQuery>, Vec<usize>), SelectionError> {
    // Definition 2.1: queries are assumed minimal.
    let minimized: Vec<ConjunctiveQuery> =
        workload.iter().map(|q| minimize(q).normalized()).collect();
    match mode {
        ReasoningMode::PreReformulation => {
            let (schema, vocab) = schema.ok_or(SelectionError::SchemaRequired(mode))?;
            let mut effective = Vec::new();
            let mut branch_of = Vec::new();
            for (qi, q) in minimized.iter().enumerate() {
                for branch in rdf_reform::reformulate(q, schema, vocab) {
                    effective.push(branch.normalized());
                    branch_of.push(qi);
                }
            }
            Ok((effective, branch_of))
        }
        _ => {
            let branch_of = (0..minimized.len()).collect();
            Ok((minimized, branch_of))
        }
    }
}

/// Runs the search over an already-prepared session and packages the
/// result. Read-only on the [`Preparation`], so partitioned selection can
/// run group searches in parallel against one shared session.
pub fn search_session(
    prep: &Preparation,
    schema: Option<(&Schema, &VocabIds)>,
    effective: Vec<ConjunctiveQuery>,
    branch_of: Vec<usize>,
    options: &SelectionOptions,
) -> Result<Recommendation, SelectionError> {
    let s0 = State::initial(&effective);
    let mut model = CostModel::new(prep.catalog(), options.weights);
    if options.calibrate_cm {
        model.calibrate_cm(&s0);
    }
    let warm = if options.warm_start {
        prep.warm_seed(&effective)
    } else {
        None
    };
    let outcome = search_seeded(s0, warm, &model, &options.search);
    if options.fail_on_exhausted_budget && (outcome.stats.out_of_budget || outcome.stats.timed_out)
    {
        return Err(SelectionError::BudgetExhausted {
            created: outcome.stats.created,
        });
    }

    let views: Vec<View> = outcome.best_state.views().cloned().collect();
    let materialization: Vec<UnionQuery> = match prep.reasoning() {
        ReasoningMode::PostReformulation => {
            let (schema, vocab) = schema.ok_or(SelectionError::SchemaRequired(prep.reasoning()))?;
            views
                .iter()
                .map(|v| rdf_reform::reformulate(&v.as_query(), schema, vocab))
                .collect()
        }
        _ => views
            .iter()
            .map(|v| UnionQuery::singleton(v.as_query()))
            .collect(),
    };

    Ok(Recommendation {
        workload: effective,
        branch_of,
        outcome,
        views,
        materialization,
        catalog: Arc::clone(&prep.catalog),
    })
}

/// Runs view selection through a prepared session, reusing its cached
/// saturated store and statistics catalog.
pub fn select_views_session(
    prep: &mut Preparation,
    store: &TripleStore,
    schema: Option<(&Schema, &VocabIds)>,
    workload: &[ConjunctiveQuery],
    options: &SelectionOptions,
) -> Result<Recommendation, SelectionError> {
    if workload.is_empty() {
        return Err(SelectionError::EmptyWorkload);
    }
    if options.reasoning != prep.reasoning() {
        return Err(SelectionError::ModeMismatch {
            prepared: prep.reasoning(),
            requested: options.reasoning,
        });
    }
    prep.ensure_fresh(store)?;
    let (effective, branch_of) = effective_workload(prep.reasoning(), schema, workload)?;
    prep.extend(store, schema, &effective)?;
    let rec = search_session(prep, schema, effective, branch_of, options)?;
    // Prime the warm-start cache: the next ±1-delta workload can seed its
    // frontier from this best state instead of searching cold.
    prep.note_warm_start(&rec.workload, &rec.outcome.best_state);
    Ok(rec)
}

/// Runs view selection over a store and workload, returning every failure
/// as a [`SelectionError`].
///
/// `schema` is required for every mode except [`ReasoningMode::Plain`].
/// For repeated selections over the same database, build a
/// [`Preparation`] once (or use the facade crate's `Advisor`) and call
/// [`select_views_session`] instead — this entry point redoes the
/// per-database preparation on every call.
pub fn try_select_views(
    store: &TripleStore,
    dict: &Dictionary,
    schema: Option<(&Schema, &VocabIds)>,
    workload: &[ConjunctiveQuery],
    options: &SelectionOptions,
) -> Result<Recommendation, SelectionError> {
    let mut prep = Preparation::new(store, dict, schema, options.reasoning)?;
    select_views_session(&mut prep, store, schema, workload, options)
}

/// Runs view selection over a store and workload.
///
/// Backward-compatible wrapper over [`try_select_views`]; panics on
/// misconfiguration (missing schema, empty workload). New code should use
/// [`try_select_views`] or the `Advisor` session API.
pub fn select_views(
    store: &TripleStore,
    dict: &Dictionary,
    schema: Option<(&Schema, &VocabIds)>,
    workload: &[ConjunctiveQuery],
    options: &SelectionOptions,
) -> Recommendation {
    try_select_views(store, dict, schema, workload, options)
        // xlint: allow(X001, reason = "documented panicking compatibility wrapper over the fallible API")
        .unwrap_or_else(|e| panic!("select_views: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Dataset;
    use rdf_query::parser::parse_query;
    use rdf_schema::SchemaStatement;

    fn museum_db() -> (Dataset, Schema, VocabIds) {
        let mut db = Dataset::new();
        let vocab = VocabIds::intern(db.dict_mut());
        let painting = db.dict_mut().intern_uri("painting");
        let picture = db.dict_mut().intern_uri("picture");
        let is_exp_in = db.dict_mut().intern_uri("isExpIn");
        let is_locat_in = db.dict_mut().intern_uri("isLocatIn");
        let mut schema = Schema::new();
        schema.add(SchemaStatement::SubClassOf(painting, picture));
        schema.add(SchemaStatement::SubPropertyOf(is_exp_in, is_locat_in));
        for i in 0..12 {
            let x = db.dict_mut().intern_uri(&format!("item{i}"));
            let class = if i % 2 == 0 { painting } else { picture };
            db.store_mut().insert([x, vocab.rdf_type, class]);
            let museum = db.dict_mut().intern_uri(&format!("museum{}", i % 4));
            let prop = if i % 3 == 0 { is_exp_in } else { is_locat_in };
            db.store_mut().insert([x, prop, museum]);
        }
        (db, schema, vocab)
    }

    fn workload(db: &mut Dataset) -> Vec<ConjunctiveQuery> {
        vec![
            parse_query(
                "q(X1, X2) :- t(X1, rdf:type, picture), t(X1, isLocatIn, X2)",
                db.dict_mut(),
            )
            .unwrap()
            .query,
        ]
    }

    #[test]
    fn plain_selection_runs() {
        let (mut db, _schema, _vocab) = museum_db();
        let queries = workload(&mut db);
        let rec = select_views(
            db.store(),
            db.dict(),
            None,
            &queries,
            &SelectionOptions::recommended(),
        );
        assert!(!rec.views.is_empty());
        assert_eq!(rec.branch_of, vec![0]);
        assert!(rec.rcr() >= 0.0);
        assert_eq!(rec.views.len(), rec.materialization.len());
    }

    #[test]
    fn post_reformulation_reformulates_views() {
        let (mut db, schema, vocab) = museum_db();
        let queries = workload(&mut db);
        let rec = select_views(
            db.store(),
            db.dict(),
            Some((&schema, &vocab)),
            &queries,
            &SelectionOptions {
                reasoning: ReasoningMode::PostReformulation,
                calibrate_cm: true,
                ..Default::default()
            },
        );
        // At least one materialization union must have multiple branches
        // (the workload touches both the class and the property hierarchy).
        assert!(rec.materialization.iter().any(|u| u.len() > 1));
    }

    #[test]
    fn pre_reformulation_expands_workload() {
        let (mut db, schema, vocab) = museum_db();
        let queries = workload(&mut db);
        let rec = select_views(
            db.store(),
            db.dict(),
            Some((&schema, &vocab)),
            &queries,
            &SelectionOptions {
                reasoning: ReasoningMode::PreReformulation,
                calibrate_cm: true,
                ..Default::default()
            },
        );
        assert!(rec.workload.len() > 1, "reformulation adds branches");
        assert!(rec.branch_of.iter().all(|&b| b == 0));
        // Every branch keeps a rewriting in the best state.
        assert_eq!(
            rec.outcome.best_state.rewritings().len(),
            rec.workload.len()
        );
    }

    #[test]
    fn saturation_and_post_reformulation_agree_on_best_cost() {
        // Section 4.3: "we perform the search using the same initial state
        // and statistics, and get the same best state as in the database
        // saturation approach".
        let (mut db, schema, vocab) = museum_db();
        let queries = workload(&mut db);
        let mk = |mode| SelectionOptions {
            reasoning: mode,
            calibrate_cm: false,
            ..Default::default()
        };
        let sat = select_views(
            db.store(),
            db.dict(),
            Some((&schema, &vocab)),
            &queries,
            &mk(ReasoningMode::Saturation),
        );
        let post = select_views(
            db.store(),
            db.dict(),
            Some((&schema, &vocab)),
            &queries,
            &mk(ReasoningMode::PostReformulation),
        );
        let rel = (sat.outcome.best_cost - post.outcome.best_cost).abs()
            / sat.outcome.best_cost.max(1e-9);
        assert!(
            rel < 1e-6,
            "sat {} vs post {}",
            sat.outcome.best_cost,
            post.outcome.best_cost
        );
        assert_eq!(
            sat.outcome.best_state.signature(),
            post.outcome.best_state.signature()
        );
    }

    #[test]
    fn missing_schema_is_an_error_not_a_panic() {
        let (mut db, _schema, _vocab) = museum_db();
        let queries = workload(&mut db);
        for mode in [
            ReasoningMode::Saturation,
            ReasoningMode::PreReformulation,
            ReasoningMode::PostReformulation,
        ] {
            let err = try_select_views(
                db.store(),
                db.dict(),
                None,
                &queries,
                &SelectionOptions {
                    reasoning: mode,
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert_eq!(err, SelectionError::SchemaRequired(mode));
        }
    }

    #[test]
    fn empty_workload_is_an_error() {
        let (db, _schema, _vocab) = museum_db();
        let err = try_select_views(
            db.store(),
            db.dict(),
            None,
            &[],
            &SelectionOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, SelectionError::EmptyWorkload);
    }

    #[test]
    fn session_reuse_skips_stats_recollection() {
        let (mut db, schema, vocab) = museum_db();
        let queries = workload(&mut db);
        let options = SelectionOptions {
            reasoning: ReasoningMode::Saturation,
            calibrate_cm: true,
            ..Default::default()
        };
        let mut prep = Preparation::new(
            db.store(),
            db.dict(),
            Some((&schema, &vocab)),
            ReasoningMode::Saturation,
        )
        .unwrap();
        assert_eq!(prep.saturation_runs(), 1);
        let first = select_views_session(
            &mut prep,
            db.store(),
            Some((&schema, &vocab)),
            &queries,
            &options,
        )
        .unwrap();
        let collected = prep.stats_collections();
        assert!(collected > 0, "first run must count atoms");
        let second = select_views_session(
            &mut prep,
            db.store(),
            Some((&schema, &vocab)),
            &queries,
            &options,
        )
        .unwrap();
        assert_eq!(
            prep.stats_collections(),
            collected,
            "second run over the same workload must not touch the store"
        );
        assert_eq!(prep.saturation_runs(), 1, "never re-saturates");
        assert_eq!(first.outcome.best_cost, second.outcome.best_cost);
        assert_eq!(
            first.outcome.best_state.signature(),
            second.outcome.best_state.signature()
        );
    }

    #[test]
    fn mutated_store_stales_the_session_until_refresh() {
        let (mut db, _schema, _vocab) = museum_db();
        let queries = workload(&mut db);
        let options = SelectionOptions::recommended();
        let mut prep = Preparation::new(db.store(), db.dict(), None, ReasoningMode::Plain).unwrap();
        let prepared = prep.store_version();
        select_views_session(&mut prep, db.store(), None, &queries, &options).unwrap();

        // Any store mutation — insert, batch, removal — moves the version.
        let x = db.dict_mut().intern_uri("late-arrival");
        db.store_mut().insert([x, x, x]);
        let err =
            select_views_session(&mut prep, db.store(), None, &queries, &options).unwrap_err();
        assert_eq!(
            err,
            SelectionError::StaleSession {
                prepared,
                current: db.store().version(),
            }
        );

        // Refresh re-prepares against the current contents; the session
        // works again and its catalog reflects the new store version.
        prep.refresh(db.store(), db.dict(), None).unwrap();
        assert_eq!(prep.store_version(), db.store().version());
        select_views_session(&mut prep, db.store(), None, &queries, &options).unwrap();
    }

    #[test]
    fn session_mode_mismatch_is_rejected() {
        let (mut db, _schema, _vocab) = museum_db();
        let queries = workload(&mut db);
        let mut prep = Preparation::new(db.store(), db.dict(), None, ReasoningMode::Plain).unwrap();
        let err = select_views_session(
            &mut prep,
            db.store(),
            None,
            &queries,
            &SelectionOptions {
                reasoning: ReasoningMode::Saturation,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SelectionError::ModeMismatch { .. }));
    }

    #[test]
    fn strict_budget_surfaces_exhaustion() {
        let (mut db, _schema, _vocab) = museum_db();
        let queries = workload(&mut db);
        let err = try_select_views(
            db.store(),
            db.dict(),
            None,
            &queries,
            &SelectionOptions {
                fail_on_exhausted_budget: true,
                search: SearchConfig {
                    max_states: Some(1),
                    ..SearchConfig::default()
                },
                ..Default::default()
            },
        );
        match err {
            Err(SelectionError::BudgetExhausted { created }) => assert!(created >= 1),
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }
}
