//! # rdfviews-core
//!
//! The primary contribution of *View Selection in Semantic Web Databases*
//! (Goasdoué, Karanasos, Leblay, Manolescu — VLDB 2011): given a workload
//! of conjunctive RDF queries, recommend a set of views to materialize such
//! that **every** workload query is answerable from the views alone, while
//! minimizing a weighted combination of query-rewriting evaluation cost,
//! view storage space and view maintenance cost.
//!
//! The crate mirrors the paper's structure:
//!
//! * [`state`] — candidate view sets as **states** ⟨V, R⟩ (Definition 2.3):
//!   views plus exactly one rewriting per workload query (Section 3.1);
//! * [`transitions`] — the four state transitions Selection Cut, Join Cut,
//!   View Break and View Fusion (Definitions 3.2–3.5), complete for the
//!   whole state space (Theorem 5.1);
//! * [`cost`] — the cost estimation `cǫ = cs·VSO + cr·REC + cm·VMC`
//!   (Section 3.3), backed by `rdf-stats`;
//! * [`search`] — the strategies: EXNAIVE (Algorithm 2), stratified EXSTR,
//!   DFS, greedy GSTR, the Aggressive View Fusion optimization, the
//!   stop conditions, and reimplementations of the relational competitor
//!   strategies of Theodoratos et al. (Pruning / Greedy / Heuristic,
//!   Section 6.1). All strategies drive a shared frontier/explorer core
//!   ([`SearchConfig::parallelism`] explorer threads with work stealing,
//!   sharded signature dedup, atomic counters — see the module docs'
//!   "search internals" section);
//! * [`pipeline`] — end-to-end view selection including the three RDF
//!   entailment scenarios of Section 4.3: saturation, pre-reformulation and
//!   the paper's novel **post-reformulation**;
//! * [`unfold`] — rewriting unfolding, the semantic check behind every
//!   transition's correctness tests;
//! * [`rewrite`] — bucket/MiniCon-style rewriting of **ad-hoc** queries
//!   over an already-selected view set (views-only covers verified by
//!   unfolding equivalence, plus hybrid view/base plans), the engine
//!   behind the facade's `Deployment::plan` / `answer_query`.
//!
//! ```
//! use rdf_model::Dataset;
//! use rdf_query::parser::parse_query;
//! use rdf_stats::collect_stats;
//! use rdfviews_core::cost::{CostModel, CostWeights};
//! use rdfviews_core::search::{search, SearchConfig, StrategyKind};
//! use rdfviews_core::state::State;
//!
//! let mut db = Dataset::new();
//! # use rdf_model::Term;
//! # for i in 0..8 {
//! #     db.insert_terms(Term::uri(format!("s{i}")), Term::uri("p"), Term::uri(format!("o{}", i % 3)));
//! #     db.insert_terms(Term::uri(format!("s{i}")), Term::uri("q"), Term::uri("c"));
//! # }
//! let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut()).unwrap();
//! let workload = vec![q.query];
//!
//! let cat = collect_stats(db.store(), db.dict(), &workload);
//! let model = CostModel::new(&cat, CostWeights::default());
//! let outcome = search(
//!     State::initial(&workload),
//!     &model,
//!     &SearchConfig { strategy: StrategyKind::Dfs, ..SearchConfig::default() },
//! );
//! assert!(outcome.best_cost <= outcome.initial_cost);
//! ```

pub mod cost;
pub mod display;
pub mod error;
pub mod partition;
pub mod pipeline;
pub mod rewrite;
pub mod search;
pub mod state;
pub mod sync;
pub mod transitions;
pub mod unfold;

pub use cost::{CostBreakdown, CostModel, CostWeights};
pub use error::SelectionError;
pub use partition::{
    partition_workload, select_views_partitioned, select_views_partitioned_session,
    try_select_views_partitioned,
};
pub use pipeline::{
    search_session, select_views, select_views_session, try_select_views, Preparation,
    ReasoningMode, Recommendation, SelectionOptions,
};
pub use rewrite::{
    base_plan, rewrite_best, rewrite_hybrid, rewrite_views_only, unfold_plan, PlanAtom, RewritePlan,
};
pub use search::{search, SearchConfig, SearchOutcome, SearchStats, StrategyKind};
pub use state::{RewAtom, Rewriting, State, View, ViewId};
pub use transitions::Transition;
