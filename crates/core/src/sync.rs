//! Poison-tolerant locking for the parallel search core.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard when the mutex is poisoned.
///
/// A poisoned stripe only means some explorer thread panicked while
/// holding the lock. Every critical section in the search core keeps its
/// protected value structurally valid at each step (dedup shards insert
/// one owned entry, the injector pushes/pops whole nodes, the best slot
/// swaps a complete tuple), and the panic itself is still surfaced to
/// the caller as [`SelectionError::SearchPanicked`] by the thread-scope
/// join. Recovering the guard therefore cannot observe a torn invariant,
/// whereas `unwrap()` would escalate one worker's panic into a poison
/// cascade that aborts every surviving explorer.
///
/// [`SelectionError::SearchPanicked`]: crate::error::SelectionError::SearchPanicked
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
