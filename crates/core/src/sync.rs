//! Poison-tolerant locking for the parallel search core and the
//! deployment generation-swap sites.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, recovering the guard when the mutex is poisoned.
///
/// A poisoned stripe only means some explorer thread panicked while
/// holding the lock. Every critical section in the search core keeps its
/// protected value structurally valid at each step (dedup shards insert
/// one owned entry, the injector pushes/pops whole nodes, the best slot
/// swaps a complete tuple), and the panic itself is still surfaced to
/// the caller as [`SelectionError::SearchPanicked`] by the thread-scope
/// join. Recovering the guard therefore cannot observe a torn invariant,
/// whereas `unwrap()` would escalate one worker's panic into a poison
/// cascade that aborts every surviving explorer.
///
/// [`SelectionError::SearchPanicked`]: crate::error::SelectionError::SearchPanicked
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering the guard when the lock is poisoned.
///
/// Used by the deployment layer's generation slot: the protected value is
/// a whole `Arc` to an immutable generation, swapped in a single
/// assignment, so a panicked writer can at worst leave the *previous*
/// complete generation behind — never a torn one. Recovering the guard
/// keeps snapshot readers wait-free instead of cascading one panic into
/// every concurrent read.
pub fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock counterpart of [`read_unpoisoned`], for publishing a new
/// generation `Arc` into the slot.
pub fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}
