//! States: candidate view sets with their rewritings (Sections 2 and 3.1).

use std::collections::BTreeMap;

use rdf_model::{FxHashMap, FxHashSet};
use rdf_query::canonical::{canonical_form, HeadMode};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, Var};

/// Identifier of a view within a state lineage. Fresh ids are allocated by
/// transitions, so a view keeps its id across the states it survives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId(pub u32);

impl std::fmt::Display for ViewId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A view: a conjunctive query over the triple table whose head is an
/// ordered list of distinct variables.
///
/// View bodies never contain Cartesian products (Section 3.1): every
/// transition preserves connectedness of the view's join graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Stable identifier.
    pub id: ViewId,
    /// Ordered distinct head variables.
    pub head: Vec<Var>,
    /// Body atoms.
    pub atoms: Vec<Atom>,
}

impl View {
    /// `len(v)`: the number of atoms (the paper's maintenance exponent).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the body is empty (never true for well-formed views).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The view as a plain conjunctive query.
    pub fn as_query(&self) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            self.head.iter().map(|&v| QTerm::Var(v)).collect(),
            self.atoms.clone(),
        )
    }

    /// Position of a head variable.
    pub fn head_index(&self, v: Var) -> Option<usize> {
        self.head.iter().position(|&h| h == v)
    }

    /// A variable index unused by this view.
    pub fn fresh_var(&self) -> Var {
        let body = self.atoms.iter().flat_map(|a| a.vars()).map(|v| v.0);
        let head = self.head.iter().map(|v| v.0);
        Var(body.chain(head).max().map_or(0, |m| m + 1))
    }

    /// Whether the view has no constants at all (the `stop_var` condition —
    /// its space occupancy is considered too high).
    pub fn all_variables(&self) -> bool {
        self.atoms.iter().all(|a| a.const_count() == 0)
    }

    /// Whether the view is exactly the full triple table `t(s, p, o)`
    /// (the `stop_tt` condition).
    pub fn is_triple_table(&self) -> bool {
        self.atoms.len() == 1 && self.atoms[0].const_count() == 0 && {
            let vars: Vec<Var> = self.atoms[0].vars().collect();
            vars.len() == 3 && vars.iter().collect::<FxHashSet<_>>().len() == 3
        }
    }
}

/// One atom of a rewriting: a view applied to argument terms.
///
/// The relational-algebra expressions of Definitions 3.2–3.5 are encoded in
/// the conjunctive formalism the paper itself uses for rewritings:
/// a constant argument is a selection `σ`, a repeated variable is a join
/// `⋈`, and the rewriting head is the final projection `π`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewAtom {
    /// The view scanned.
    pub view: ViewId,
    /// One term per view head column.
    pub args: Vec<QTerm>,
}

/// The rewriting of one workload query over the state's views
/// (Definition 2.2: equivalent to the query, using only view relations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewriting {
    /// Index of the workload query this rewriting answers.
    pub query_index: usize,
    /// The query's head, in the rewriting's variable space.
    pub head: Vec<QTerm>,
    /// View atoms.
    pub atoms: Vec<RewAtom>,
    /// Fresh-variable counter for this rewriting's variable space.
    next_var: u32,
}

impl Rewriting {
    /// Reassembles a rewriting from persisted parts. `next_var` must be
    /// at least one past every variable used in `head`/`atoms` (it is
    /// whatever [`Rewriting::next_var`] reported when serialized).
    pub fn from_parts(
        query_index: usize,
        head: Vec<QTerm>,
        atoms: Vec<RewAtom>,
        next_var: u32,
    ) -> Self {
        Rewriting {
            query_index,
            head,
            atoms,
            next_var,
        }
    }

    /// The fresh-variable counter (for serialization).
    pub fn next_var(&self) -> u32 {
        self.next_var
    }

    /// Allocates a fresh rewriting variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.next_var);
        self.next_var += 1;
        v
    }

    /// All view ids used by this rewriting.
    pub fn views_used(&self) -> impl Iterator<Item = ViewId> + '_ {
        self.atoms.iter().map(|a| a.view)
    }
}

/// A state `S(Q) = ⟨V, R⟩`: the candidate view set and one rewriting per
/// workload query (Definition 2.3). Both invariants of that definition are
/// maintained by construction: every query has exactly one rewriting, and
/// every view occurs in at least one rewriting.
#[derive(Debug, Clone)]
pub struct State {
    views: BTreeMap<ViewId, View>,
    rewritings: Vec<Rewriting>,
    next_view_id: u32,
}

/// A collision-resistant 128-bit signature of a state's view set, used to
/// deduplicate states reached through different transition paths.
pub type StateSignature = u128;

/// Canonicalizes one rewriting up to variable renaming and atom order by
/// encoding it as a conjunctive query over the triple table and reusing
/// [`canonical_form`]: each view scan becomes a fresh *scan node* variable
/// `w` with one atom `(w, P, arg)` per argument, where the pseudo-predicate
/// constant `P` encodes the scanned view's isomorphism class and the
/// argument's canonical head column. Scan nodes glue an atom's arguments
/// together, the pseudo-predicates pin them to (class, column), and the
/// rewriting head participates in declared order — so the canonical key is
/// identical for every representative of the same abstract rewriting.
fn rewriting_canonical_key(
    r: &Rewriting,
    class_of: &dyn Fn(ViewId) -> u32,
    forms: &FxHashMap<ViewId, (Vec<rdf_query::canonical::CTok>, Vec<u32>)>,
) -> Vec<rdf_query::canonical::CTok> {
    // Pseudo-predicate ids live at the top of the id space, far above any
    // dictionary id a real workload produces.
    const PSEUDO_TOP: u32 = u32::MAX;
    const MAX_COLS: u32 = 256;
    let first_free_var = r
        .atoms
        .iter()
        .flat_map(|a| a.args.iter())
        .chain(r.head.iter())
        .filter_map(|t| match t {
            QTerm::Var(v) => Some(v.0 + 1),
            QTerm::Const(_) => None,
        })
        .max()
        .unwrap_or(0);
    let mut atoms: Vec<Atom> = Vec::new();
    for (si, scan) in r.atoms.iter().enumerate() {
        let w = Var(first_free_var + si as u32);
        let class = class_of(scan.view);
        let ranks = &forms[&scan.view].1;
        debug_assert!((ranks.len() as u32) < MAX_COLS);
        if scan.args.is_empty() {
            // Zero-arity scan: a marker atom so the scan still appears.
            let p = rdf_model::Id(PSEUDO_TOP - class * MAX_COLS);
            atoms.push(Atom::new(QTerm::Var(w), QTerm::Const(p), QTerm::Var(w)));
        }
        for (pos, arg) in scan.args.iter().enumerate() {
            let p = rdf_model::Id(PSEUDO_TOP - (class * MAX_COLS + ranks[pos] + 1));
            atoms.push(Atom::new(QTerm::Var(w), QTerm::Const(p), *arg));
        }
    }
    let encoded = ConjunctiveQuery::new(r.head.clone(), atoms);
    canonical_form(&encoded, rdf_query::canonical::HeadMode::Ordered).key
}

/// Where one query of a re-seeded workload takes its rewriting from (see
/// [`State::reseed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReseedSource {
    /// Transplant rewriting `j` of the previous best state.
    Carry(usize),
    /// Start from the query's initial single-scan view.
    Fresh,
}

impl State {
    /// The initial state `S0(Q)`: one view per query (`V0 = Q`), each
    /// rewriting a plain view scan (Section 5.1).
    ///
    /// Queries must be safe and connected (Definition 2.1 assumes queries
    /// without Cartesian products; represent a product query by its
    /// independent sub-queries instead).
    pub fn initial(queries: &[ConjunctiveQuery]) -> State {
        let mut views = BTreeMap::new();
        let mut rewritings = Vec::with_capacity(queries.len());
        for (qi, q) in queries.iter().enumerate() {
            assert!(q.is_safe(), "workload query {qi} is unsafe");
            assert!(
                rdf_query::graph::JoinGraph::new(&q.atoms).is_connected(),
                "workload query {qi} contains a Cartesian product; split it first"
            );
            let id = ViewId(qi as u32);
            // The view head: the query's distinct head variables, in order.
            let head = q.head_vars();
            let head_set: FxHashSet<Var> = head.iter().copied().collect();
            debug_assert_eq!(head_set.len(), head.len());
            views.insert(
                id,
                View {
                    id,
                    head: head.clone(),
                    atoms: q.atoms.clone(),
                },
            );
            // Trivial rewriting: qi = π_head(vi) — a single view scan.
            let args: Vec<QTerm> = head.iter().map(|&v| QTerm::Var(v)).collect();
            rewritings.push(Rewriting {
                query_index: qi,
                head: q.head.clone(),
                atoms: vec![RewAtom { view: id, args }],
                next_var: q.max_var().map_or(0, |m| m + 1),
            });
        }
        State {
            views,
            rewritings,
            next_view_id: queries.len() as u32,
        }
    }

    /// Reassembles a state from persisted parts: the view set, one
    /// rewriting per workload query, and the view-id counter reported by
    /// [`State::next_view_id`] at serialization time. The caller vouches
    /// that the parts came from a valid state; `check_invariants` can be
    /// run afterwards as a defense-in-depth check.
    pub fn from_parts(
        views: impl IntoIterator<Item = View>,
        rewritings: Vec<Rewriting>,
        next_view_id: u32,
    ) -> State {
        State {
            views: views.into_iter().map(|v| (v.id, v)).collect(),
            rewritings,
            next_view_id,
        }
    }

    /// The fresh-view-id counter (for serialization).
    pub fn next_view_id(&self) -> u32 {
        self.next_view_id
    }

    /// The views, ordered by id.
    pub fn views(&self) -> impl Iterator<Item = &View> {
        self.views.values()
    }

    /// Number of views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Looks a view up.
    pub fn view(&self, id: ViewId) -> &View {
        &self.views[&id]
    }

    /// The rewritings, one per workload query.
    pub fn rewritings(&self) -> &[Rewriting] {
        &self.rewritings
    }

    /// Mutable access for transitions (kept `pub(crate)`).
    pub(crate) fn rewritings_mut(&mut self) -> &mut [Rewriting] {
        &mut self.rewritings
    }

    /// Allocates a fresh view id.
    pub(crate) fn fresh_view_id(&mut self) -> ViewId {
        let id = ViewId(self.next_view_id);
        self.next_view_id += 1;
        id
    }

    /// Removes a view (transitions only; the caller must rewire
    /// rewritings).
    pub(crate) fn remove_view(&mut self, id: ViewId) -> View {
        // xlint: allow(X001, reason = "transitions only remove views their source state provably contains")
        self.views.remove(&id).expect("removing unknown view")
    }

    /// Inserts a view.
    pub(crate) fn insert_view(&mut self, view: View) {
        self.views.insert(view.id, view);
    }

    /// Checks Definition 2.3's invariants; used by debug assertions and
    /// tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut used: FxHashSet<ViewId> = FxHashSet::default();
        for (ri, r) in self.rewritings.iter().enumerate() {
            if r.atoms.is_empty() {
                return Err(format!("rewriting {ri} is empty"));
            }
            for atom in &r.atoms {
                let Some(view) = self.views.get(&atom.view) else {
                    return Err(format!("rewriting {ri} uses unknown view {}", atom.view));
                };
                if atom.args.len() != view.head.len() {
                    return Err(format!(
                        "rewriting {ri}: arity mismatch on {} ({} args, head {})",
                        atom.view,
                        atom.args.len(),
                        view.head.len()
                    ));
                }
                used.insert(atom.view);
            }
        }
        for &id in self.views.keys() {
            if !used.contains(&id) {
                return Err(format!("view {id} participates in no rewriting"));
            }
        }
        for view in self.views.values() {
            if !rdf_query::graph::JoinGraph::new(&view.atoms).is_connected() {
                return Err(format!("view {} has a Cartesian product", view.id));
            }
            let set: FxHashSet<Var> = view.head.iter().copied().collect();
            if set.len() != view.head.len() {
                return Err(format!("view {} has duplicate head vars", view.id));
            }
            let body: FxHashSet<Var> = view.atoms.iter().flat_map(|a| a.vars()).collect();
            if !view.head.iter().all(|v| body.contains(v)) {
                return Err(format!("view {} head not covered by body", view.id));
            }
        }
        Ok(())
    }

    /// The state signature: two states collide exactly when they are the
    /// same `⟨V, R⟩` of Definition 2.3 up to variable renaming, atom
    /// order, head-column order and re-identification of isomorphic views.
    ///
    /// Both components matter. The view component is the sorted multiset
    /// of canonical view forms. The rewriting component canonicalizes each
    /// rewriting as a conjunctive query over *pseudo-predicates* encoding
    /// `(view isomorphism class, canonical head column)`, so two paths
    /// that reach the same view set but rewrite a query over *different*
    /// views (or join columns) yield distinct states — they have different
    /// evaluation costs, and conflating them would make the best cost
    /// depend on exploration order (a sequential-vs-parallel divergence
    /// the test suite checks for).
    pub fn signature(&self) -> StateSignature {
        use std::hash::{Hash, Hasher};
        // Canonical form and canonical column ranks per view.
        let mut forms: FxHashMap<ViewId, (Vec<rdf_query::canonical::CTok>, Vec<u32>)> =
            FxHashMap::default();
        for v in self.views.values() {
            let cf = canonical_form(&v.as_query(), HeadMode::Sorted);
            // Rank of each head column under the canonical variable
            // numbering: invariant across representatives that permute
            // head columns.
            let numbers: Vec<u32> = v.head.iter().map(|h| cf.var_map[h]).collect();
            let mut sorted = numbers.clone();
            sorted.sort_unstable();
            let ranks = numbers
                .iter()
                // xlint: allow(X001, reason = "sorted is a sorted copy of numbers, so position always succeeds")
                .map(|n| sorted.iter().position(|x| x == n).unwrap() as u32)
                .collect();
            forms.insert(v.id, (cf.key, ranks));
        }
        let mut keys: Vec<&Vec<rdf_query::canonical::CTok>> =
            forms.values().map(|(k, _)| k).collect();
        keys.sort_unstable();
        keys.dedup();
        let class_of = |id: ViewId| -> u32 {
            let key = &forms[&id].0;
            // xlint: allow(X001, reason = "keys holds every canonical form collected from forms above")
            keys.binary_search(&key).unwrap() as u32
        };
        let mut view_keys: Vec<Vec<rdf_query::canonical::CTok>> = self
            .views
            .values()
            .map(|v| forms[&v.id].0.clone())
            .collect();
        view_keys.sort_unstable();
        // Rewriting component, one canonical key per query (rewritings are
        // indexed by query, so their order is stable across paths).
        let rewriting_keys: Vec<Vec<rdf_query::canonical::CTok>> = self
            .rewritings
            .iter()
            .map(|r| rewriting_canonical_key(r, &class_of, &forms))
            .collect();
        let mut h1 = rdf_model::fxhash::FxHasher::default();
        view_keys.hash(&mut h1);
        rewriting_keys.hash(&mut h1);
        // Second, independent hash: seed with a constant and hash the keys
        // in reverse, so a collision must defeat both.
        let mut h2 = rdf_model::fxhash::FxHasher::default();
        0xdead_beef_u64.hash(&mut h2);
        for k in view_keys.iter().rev() {
            k.hash(&mut h2);
        }
        for k in rewriting_keys.iter().rev() {
            k.hash(&mut h2);
        }
        ((h1.finish() as u128) << 64) | h2.finish() as u128
    }

    /// Groups views by body-isomorphism class; classes with ≥ 2 members are
    /// View Fusion candidates.
    pub fn fusion_classes(&self) -> Vec<Vec<ViewId>> {
        let mut groups: FxHashMap<Vec<rdf_query::canonical::CTok>, Vec<ViewId>> =
            FxHashMap::default();
        for v in self.views.values() {
            let key = canonical_form(&v.as_query(), HeadMode::Ignore).key;
            groups.entry(key).or_default().push(v.id);
        }
        let mut classes: Vec<Vec<ViewId>> = groups.into_values().filter(|g| g.len() >= 2).collect();
        classes.sort();
        classes
    }

    /// Total atoms across views — a size proxy used in experiment reports
    /// ("DFS-AVF-STV resulted in views with 3.2 atoms on average").
    pub fn total_view_atoms(&self) -> usize {
        self.views.values().map(|v| v.len()).sum()
    }

    /// Re-assembles a state for a changed workload from a previous best
    /// state — the warm-start seed for ±1-query workload deltas.
    ///
    /// `sources[i]` says where query `i` of the new workload gets its
    /// rewriting: [`ReseedSource::Carry`]`(j)` transplants the previous
    /// state's rewriting `j` (the query texts must be identical — the
    /// pipeline matches minimized, normalized queries), while
    /// [`ReseedSource::Fresh`] gives the query its initial single-scan
    /// view, exactly as [`State::initial`] would. Previous views that no
    /// surviving rewriting uses are dropped, so the seed satisfies
    /// Definition 2.3's invariants by construction.
    pub(crate) fn reseed(
        prev: &State,
        sources: &[ReseedSource],
        queries: &[ConjunctiveQuery],
    ) -> State {
        assert_eq!(sources.len(), queries.len());
        let mut next_view_id = prev.next_view_id;
        let mut rewritings: Vec<Rewriting> = Vec::with_capacity(queries.len());
        let mut views: BTreeMap<ViewId, View> = BTreeMap::new();
        for (qi, (source, q)) in sources.iter().zip(queries).enumerate() {
            match source {
                ReseedSource::Carry(j) => {
                    let mut r = prev.rewritings[*j].clone();
                    r.query_index = qi;
                    for atom in &r.atoms {
                        let v = prev.views[&atom.view].clone();
                        views.insert(v.id, v);
                    }
                    rewritings.push(r);
                }
                ReseedSource::Fresh => {
                    assert!(q.is_safe(), "workload query {qi} is unsafe");
                    assert!(
                        rdf_query::graph::JoinGraph::new(&q.atoms).is_connected(),
                        "workload query {qi} contains a Cartesian product; split it first"
                    );
                    let id = ViewId(next_view_id);
                    next_view_id += 1;
                    let head = q.head_vars();
                    views.insert(
                        id,
                        View {
                            id,
                            head: head.clone(),
                            atoms: q.atoms.clone(),
                        },
                    );
                    let args: Vec<QTerm> = head.iter().map(|&v| QTerm::Var(v)).collect();
                    rewritings.push(Rewriting {
                        query_index: qi,
                        head: q.head.clone(),
                        atoms: vec![RewAtom { view: id, args }],
                        next_var: q.max_var().map_or(0, |m| m + 1),
                    });
                }
            }
        }
        let seeded = State {
            views,
            rewritings,
            next_view_id,
        };
        debug_assert_eq!(seeded.check_invariants(), Ok(()));
        seeded
    }

    /// Merges two states over disjoint workload fragments: views of `other`
    /// are re-identified, its rewritings appended with shifted query
    /// indexes. Used by the divide-and-conquer competitor strategies.
    pub(crate) fn merge_with(&self, other: &State) -> State {
        let mut merged = self.clone();
        let mut id_map: FxHashMap<ViewId, ViewId> = FxHashMap::default();
        for view in other.views.values() {
            let new_id = merged.fresh_view_id();
            id_map.insert(view.id, new_id);
            merged.insert_view(View {
                id: new_id,
                head: view.head.clone(),
                atoms: view.atoms.clone(),
            });
        }
        let offset = merged.rewritings.len();
        for r in &other.rewritings {
            let mut r2 = r.clone();
            r2.query_index += offset;
            for atom in &mut r2.atoms {
                atom.view = id_map[&atom.view];
            }
            merged.rewritings.push(r2);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Dictionary;
    use rdf_query::parser::parse_query;

    fn workload(dict: &mut Dictionary) -> Vec<ConjunctiveQuery> {
        vec![
            parse_query(
                "q1(X, Z) :- t(X, <hasPainted>, <starryNight>), t(X, <isParentOf>, Y), \
                 t(Y, <hasPainted>, Z)",
                dict,
            )
            .unwrap()
            .query,
            parse_query("q2(A) :- t(A, <rdf:type>, <painter>)", dict)
                .unwrap()
                .query,
        ]
    }

    #[test]
    fn initial_state_structure() {
        let mut dict = Dictionary::new();
        let qs = workload(&mut dict);
        let s0 = State::initial(&qs);
        assert_eq!(s0.view_count(), 2);
        assert_eq!(s0.rewritings().len(), 2);
        s0.check_invariants().unwrap();
        // Each rewriting is a single view scan.
        for r in s0.rewritings() {
            assert_eq!(r.atoms.len(), 1);
        }
    }

    #[test]
    fn signature_is_renaming_invariant() {
        let mut dict = Dictionary::new();
        let qs = workload(&mut dict);
        let s0 = State::initial(&qs);
        // The same workload with renamed variables, parsed against the same
        // dictionary (constant ids must agree for signatures to compare).
        let renamed: Vec<ConjunctiveQuery> = [
            "q1(A, C) :- t(A, <hasPainted>, <starryNight>), t(A, <isParentOf>, B), \
             t(B, <hasPainted>, C)",
            "q2(Z) :- t(Z, <rdf:type>, <painter>)",
        ]
        .iter()
        .map(|s| parse_query(s, &mut dict).unwrap().query)
        .collect();
        let s0r = State::initial(&renamed);
        assert_eq!(s0.signature(), s0r.signature());
    }

    #[test]
    fn signature_distinguishes_different_workloads() {
        let mut dict = Dictionary::new();
        let qs = workload(&mut dict);
        let s0 = State::initial(&qs);
        let other = vec![qs[0].clone()];
        let s1 = State::initial(&other);
        assert_ne!(s0.signature(), s1.signature());
    }

    #[test]
    fn triple_table_and_all_var_detection() {
        let v_tt = View {
            id: ViewId(0),
            head: vec![Var(0), Var(1), Var(2)],
            atoms: vec![Atom::new(Var(0), Var(1), Var(2))],
        };
        assert!(v_tt.is_triple_table());
        assert!(v_tt.all_variables());
        let v_loop = View {
            id: ViewId(1),
            head: vec![Var(0), Var(1)],
            atoms: vec![Atom::new(Var(0), Var(1), Var(0))],
        };
        assert!(!v_loop.is_triple_table());
        assert!(v_loop.all_variables());
        let mut dict = Dictionary::new();
        let q = parse_query("q(X) :- t(X, <p>, Y)", &mut dict)
            .unwrap()
            .query;
        let v_const = View {
            id: ViewId(2),
            head: vec![Var(0)],
            atoms: q.atoms,
        };
        assert!(!v_const.all_variables());
    }

    #[test]
    #[should_panic(expected = "Cartesian product")]
    fn initial_rejects_products() {
        let mut dict = Dictionary::new();
        let q = parse_query("q(X, A) :- t(X, <p>, Y), t(A, <p>, B)", &mut dict).unwrap();
        let _ = State::initial(&[q.query]);
    }

    #[test]
    fn fusion_classes_group_isomorphic_views() {
        let mut dict = Dictionary::new();
        let q1 = parse_query("q1(X) :- t(X, <p>, Y)", &mut dict)
            .unwrap()
            .query;
        let q2 = parse_query("q2(B) :- t(B, <p>, C)", &mut dict)
            .unwrap()
            .query;
        let q3 = parse_query("q3(X) :- t(X, <q>, Y)", &mut dict)
            .unwrap()
            .query;
        let s = State::initial(&[q1, q2, q3]);
        let classes = s.fusion_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0], vec![ViewId(0), ViewId(1)]);
    }
}
