//! The relational view-selection strategies of Theodoratos, Ligoudistianos
//! & Sellis (DKE 39(3), 2001) — the paper's competitors (Section 6.1).
//!
//! All three follow a divide-and-conquer scheme:
//!
//! 1. break the workload into 1-query states and exhaustively apply all
//!    possible transitions to each, producing per-query state sets `Pᵢ`;
//! 2. recombine: add up one state per query (and fuse views when possible),
//!    so any combination of partial states yields a valid full state.
//!
//! "Since any combination of partial states leads to a valid state, the
//! number of states thus created explodes." The variants differ in how
//! they fight the explosion:
//!
//! * **Pruning** discards dominated partial combinations (no cost/space
//!   budget is supplied, as in the paper's comparison — pruning falls back
//!   to pairwise dominance on estimated cost and view count);
//! * **Greedy** keeps only the single best combined state per step;
//! * **Heuristic** keeps, per query, the minimal-cost state plus any state
//!   offering a view-fusion opportunity with other queries' states.
//!
//! The per-query exhaustive phase is exactly what breaks on RDF workloads:
//! 10-atom queries explode before any full-workload state exists
//! (Figure 4's "failed to produce any solution"). The state budget
//! ([`super::SearchConfig::max_states`]) reproduces that failure mode
//! deterministically.
//!
//! Phase 1's per-query explorations are independent, so with
//! [`super::SearchConfig::parallelism`] `> 1` they run on explorer
//! threads against the one shared [`SearchCore`] (budget and counters
//! stay global); each exploration drives a stack [`Frontier`] with a
//! query-local duplicate set.

use std::sync::Mutex;

use rdf_model::FxHashSet;
use rdf_query::canonical::{canonical_form, HeadMode};

use crate::cost::CostModel;
use crate::state::State;
use crate::transitions::TransitionKind;
use crate::unfold::unfold;

use super::engine::SearchCore;
use super::frontier::{Cursor, Frontier, FrontierPolicy, Node};
use super::StrategyKind;

/// Runs one of the competitor strategies against the shared core; the
/// caller packages the outcome with [`SearchCore::finish`].
pub(crate) fn run(core: &SearchCore<'_, '_, '_>, s0: &State) {
    let cfg = core.cfg;
    let model = core.model;
    let n = s0.rewritings().len();
    let queries: Vec<rdf_query::ConjunctiveQuery> = (0..n).map(|i| unfold(s0, i)).collect();
    let (_, _) = core.admit_seed(s0, TransitionKind::Vb as u8);

    // Phase 1: exhaustive per-query exploration (parallel across queries
    // when the core has more than one explorer).
    let mut per_query: Vec<Vec<State>> = if core.workers() > 1 && n > 1 {
        let slots: Vec<Mutex<Option<Vec<State>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..core.workers().min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n || core.check_halted() {
                        break;
                    }
                    let single = State::initial(std::slice::from_ref(&queries[i]));
                    let states = explore_all(core, single);
                    *crate::sync::lock_unpoisoned(&slots[i]) = Some(states);
                });
            }
        });
        if core.check_halted() {
            return;
        }
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .unwrap_or_default()
            })
            .collect()
    } else {
        let mut sets = Vec::with_capacity(n);
        for q in &queries {
            if core.check_halted() {
                return;
            }
            let single = State::initial(std::slice::from_ref(q));
            sets.push(explore_all(core, single));
        }
        sets
    };

    // Pruning and Heuristic prune the per-query sets before recombination
    // ("their pruning is mostly based on comparing two states and
    // discarding the less interesting one", Section 6.1): dominated
    // partial states are dropped. Greedy keeps everything and prunes only
    // at combination time.
    if matches!(
        cfg.strategy,
        StrategyKind::Pruning | StrategyKind::Heuristic
    ) {
        for states in &mut per_query {
            let pruned = pareto_prune(model, std::mem::take(states));
            *states = pruned;
        }
    }

    // Heuristic: keep the min-cost state per query, plus fusion
    // opportunities against the other queries' views.
    if cfg.strategy == StrategyKind::Heuristic {
        let pools: Vec<FxHashSet<Vec<rdf_query::canonical::CTok>>> = per_query
            .iter()
            .map(|states| {
                states
                    .iter()
                    .flat_map(|s| {
                        s.views()
                            .map(|v| canonical_form(&v.as_query(), HeadMode::Ignore).key)
                    })
                    .collect()
            })
            .collect();
        for (qi, states) in per_query.iter_mut().enumerate() {
            let min_idx = arg_min_cost(model, states);
            let keep: Vec<State> = states
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    *i == min_idx
                        || s.views().any(|v| {
                            let key = canonical_form(&v.as_query(), HeadMode::Ignore).key;
                            pools
                                .iter()
                                .enumerate()
                                .any(|(qj, pool)| qj != qi && pool.contains(&key))
                        })
                })
                .map(|(_, s)| s.clone())
                .collect();
            *states = keep;
        }
    }

    if per_query.iter().any(|s| s.is_empty()) {
        return; // a halted phase 1 left a query without partial states
    }

    // Phase 2: recombination, one query at a time. Greedy keeps a single
    // best state for every query prefix (including the first).
    let mut combined: Vec<State> = if cfg.strategy == StrategyKind::Greedy {
        let best = arg_min_cost(model, &per_query[0]);
        vec![per_query[0][best].clone()]
    } else {
        per_query[0].clone()
    };
    for states in per_query.iter().skip(1) {
        if core.check_halted() {
            return;
        }
        let mut next: Vec<State> = Vec::new();
        for base in &combined {
            for add in states {
                if core.check_halted() {
                    return;
                }
                core.count_created(1);
                let merged = core.avf_fixpoint(base.merge_with(add));
                next.push(merged);
            }
        }
        combined = match cfg.strategy {
            StrategyKind::Greedy => {
                let best = arg_min_cost(model, &next);
                vec![next.swap_remove(best)]
            }
            _ => pareto_prune(model, next),
        };
    }

    // Every surviving combination covers the full workload: admit them so
    // the best tracker sees them.
    for s in combined {
        if core.check_halted() {
            break;
        }
        let _ = core.admit(&s, TransitionKind::Vf as u8);
    }
}

/// Exhaustive stratified DFS from `start` over a stack [`Frontier`],
/// returning every distinct state (including `start`). Uses a query-local
/// duplicate set so identical workload queries do not starve each other,
/// while global counters and budgets still apply.
fn explore_all(core: &SearchCore<'_, '_, '_>, start: State) -> Vec<State> {
    let mut seen: FxHashSet<u128> = FxHashSet::default();
    seen.insert(start.signature());
    let mut out = vec![start.clone()];
    let mut frontier = Frontier::new(FrontierPolicy::Lifo);
    frontier.push(Node::new(
        std::sync::Arc::new(start),
        Cursor::stratified(TransitionKind::Vb),
    ));
    while let Some(mut node) = frontier.pop() {
        if core.check_halted() {
            break;
        }
        match node.cursor.next(&node.state, &core.tcfg) {
            Some(t) => {
                let next = core.step(&node.state, &t);
                core.count_created(1);
                if core.rejected(&next) {
                    core.count_discarded(1);
                    frontier.push(node);
                } else if seen.insert(next.signature()) {
                    out.push(next.clone());
                    let child = Node::new(std::sync::Arc::new(next), Cursor::stratified(t.kind()));
                    frontier.requeue(node, child);
                } else {
                    core.count_duplicates(1);
                    frontier.push(node);
                }
            }
            None => {
                core.count_explored(1);
            }
        }
    }
    out
}

fn arg_min_cost(model: &CostModel<'_>, states: &[State]) -> usize {
    let mut best = 0;
    let mut best_cost = f64::INFINITY;
    for (i, s) in states.iter().enumerate() {
        let c = model.cost(s);
        if c < best_cost {
            best_cost = c;
            best = i;
        }
    }
    best
}

/// Keeps the Pareto front over (estimated cost, view count): a state
/// survives unless another one is at least as good on both axes and
/// strictly better on one.
fn pareto_prune(model: &CostModel<'_>, states: Vec<State>) -> Vec<State> {
    let scored: Vec<(f64, usize, State)> = states
        .into_iter()
        .map(|s| (model.cost(&s), s.view_count(), s))
        .collect();
    let mut keep = Vec::new();
    'outer: for (i, (ci, vi, s)) in scored.iter().enumerate() {
        for (j, (cj, vj, _)) in scored.iter().enumerate() {
            if i != j {
                let dominated =
                    (cj < ci && vj <= vi) || (cj <= ci && vj < vi) || (cj < ci && vj < vi);
                // Tie-break exact duplicates by index to keep one copy.
                let tied = cj == ci && vj == vi && j < i;
                if dominated || tied {
                    continue 'outer;
                }
            }
        }
        keep.push(s.clone());
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostWeights;
    use crate::search::{search, SearchConfig};
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;
    use rdf_stats::collect_stats;

    fn db() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..30 {
            let s = format!("s{i}");
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri("p"),
                Term::uri(format!("a{}", i % 3)),
            );
            db.insert_terms(Term::uri(s.as_str()), Term::uri("q"), Term::uri("b"));
        }
        db
    }

    fn workload(db: &mut Dataset) -> Vec<rdf_query::ConjunctiveQuery> {
        vec![
            parse_query("q1(X) :- t(X, <p>, <a1>), t(X, <q>, <b>)", db.dict_mut())
                .unwrap()
                .query,
            parse_query("q2(Y) :- t(Y, <p>, <a2>)", db.dict_mut())
                .unwrap()
                .query,
        ]
    }

    #[test]
    fn competitors_produce_solutions_on_small_workloads() {
        let mut db = db();
        let queries = workload(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        for strat in [
            StrategyKind::Greedy,
            StrategyKind::Pruning,
            StrategyKind::Heuristic,
        ] {
            let out = search(
                State::initial(&queries),
                &model,
                &SearchConfig {
                    strategy: strat,
                    avf: false,
                    stop_var: true,
                    max_states: Some(200_000),
                    ..SearchConfig::default()
                },
            );
            assert!(!out.stats.out_of_budget, "{strat:?} should finish");
            assert!(out.best_cost <= out.initial_cost, "{strat:?}");
            out.best_state.check_invariants().unwrap();
            assert_eq!(out.best_state.rewritings().len(), 2, "{strat:?}");
        }
    }

    #[test]
    fn competitors_oom_on_tight_budget() {
        let mut db = db();
        let queries = workload(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        let out = search(
            State::initial(&queries),
            &model,
            &SearchConfig {
                strategy: StrategyKind::Pruning,
                max_states: Some(5),
                ..SearchConfig::default()
            },
        );
        assert!(out.stats.out_of_budget);
        // No better state was reached before the budget died.
        assert_eq!(out.best_cost, out.initial_cost);
    }

    #[test]
    fn duplicate_queries_still_combine() {
        let mut db = db();
        let q = parse_query("q1(X) :- t(X, <p>, <a1>)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![q.clone(), q];
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        let out = search(
            State::initial(&queries),
            &model,
            &SearchConfig {
                strategy: StrategyKind::Greedy,
                ..SearchConfig::default()
            },
        );
        assert_eq!(out.best_state.rewritings().len(), 2);
        out.best_state.check_invariants().unwrap();
    }

    #[test]
    fn parallel_competitor_phase1_matches_sequential() {
        let mut db = db();
        let queries = workload(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        let base = SearchConfig {
            strategy: StrategyKind::Pruning,
            avf: false,
            stop_var: true,
            max_states: Some(200_000),
            ..SearchConfig::default()
        };
        let seq = search(State::initial(&queries), &model, &base);
        let par = search(
            State::initial(&queries),
            &model,
            &SearchConfig {
                parallelism: 4,
                ..base
            },
        );
        assert_eq!(seq.best_cost, par.best_cost);
    }
}
