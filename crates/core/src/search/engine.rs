//! The shared search core: one [`SearchCore`] per search run, safe to
//! drive from any number of explorer threads.
//!
//! The core owns everything the strategies share:
//!
//! * a **sharded, lock-striped signature table** for duplicate detection —
//!   states hash to one of [`DEDUP_SHARDS`] stripes, so concurrent
//!   explorers only contend when they reach states with colliding stripe
//!   indexes, never on one global map;
//! * the **Figure 5 counters** (`created` / `duplicates` / `discarded` /
//!   `explored` / `transitions`) as relaxed atomics, plus the shared
//!   `max_states` budget check folded into the `created` increment;
//! * the **best tracker**: a lock-free cost gate (`best_bits`) in front of
//!   a mutex slot holding the best state and the Figure 7 cost-over-time
//!   trace. Exact cost ties break on the state signature so the reported
//!   best state is identical no matter how many explorers raced for it;
//! * the **work-stealing scheduler**: each explorer owns a private
//!   [`Frontier`] and, whenever siblings might starve, donates its
//!   freshly admitted successor to a shared injector — fresh nodes are
//!   the only ones guaranteed to hold unexplored work, because the shared
//!   dedup table eats the subtrees of older nodes; idle explorers take
//!   from the injector and terminate when the global pending count
//!   reaches zero.
//!
//! With `parallelism = 1` the single explorer runs inline on the calling
//! thread over the exact node ordering of the classic sequential loops, so
//! sequential results (and counters) are reproducible run over run.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use std::collections::VecDeque;
use std::sync::Arc;

use rdf_model::FxHashMap;

use crate::cost::CostModel;
use crate::state::State;
use crate::sync::lock_unpoisoned;
use crate::transitions::{apply, enumerate, Transition, TransitionConfig, TransitionKind};

use super::frontier::{CursorMode, Frontier, FrontierPolicy, Node};
use super::{SearchConfig, SearchOutcome, SearchStats};

/// Number of dedup stripes (power of two; states hash uniformly, so with
/// 64 stripes even 16 explorers rarely collide on a lock).
const DEDUP_SHARDS: usize = 64;

/// What [`SearchCore::admit`] decided about a reached state.
pub(crate) enum Admission {
    /// First time this state is attained: expand it.
    New {
        /// Its estimated cost (computed once, outside the stripe lock).
        cost: f64,
        /// Its signature.
        sig: u128,
    },
    /// Already attained, but re-reached at a strictly lower stratification
    /// phase: must be expanded again for the stratified strategies to stay
    /// exhaustive (counted as both a duplicate and a re-expansion).
    Reexpand,
    /// Already attained.
    Duplicate,
    /// Rejected by a stop condition.
    Discarded,
}

/// A thread-safe "keep the minimum" cell: a lock-free cost gate in front
/// of a mutex slot. Exact cost ties break on the smaller state signature,
/// making the winner independent of arrival order.
pub(crate) struct BestCell {
    bits: AtomicU64,
    slot: Mutex<Option<(f64, u128, Arc<State>)>>,
}

impl BestCell {
    pub fn new() -> Self {
        BestCell {
            bits: AtomicU64::new(f64::INFINITY.to_bits()),
            slot: Mutex::new(None),
        }
    }

    /// Offers a candidate; keeps it iff it beats the current holder.
    pub fn offer(&self, cost: f64, sig: u128, state: &Arc<State>) {
        if cost > f64::from_bits(self.bits.load(Ordering::Relaxed)) {
            return;
        }
        let mut slot = lock_unpoisoned(&self.slot);
        let better = match &*slot {
            None => true,
            Some((c, g, _)) => cost < *c || (cost == *c && sig < *g),
        };
        if better {
            self.bits.store(cost.to_bits(), Ordering::Relaxed);
            *slot = Some((cost, sig, Arc::clone(state)));
        }
    }

    /// The current holder, if any.
    pub fn take(&self) -> Option<Arc<State>> {
        lock_unpoisoned(&self.slot).take().map(|(_, _, s)| s)
    }
}

struct BestSlot {
    cost: f64,
    sig: u128,
    state: State,
    trace: Vec<(f64, f64)>,
}

/// The shared bookkeeping core of one search run. All methods take
/// `&self`; the struct is `Sync` and is borrowed by every explorer thread
/// of the run.
pub(crate) struct SearchCore<'m, 'a, 'c> {
    pub model: &'m CostModel<'a>,
    pub cfg: &'c SearchConfig,
    pub tcfg: TransitionConfig,
    workers: usize,
    dedup: Vec<Mutex<FxHashMap<u128, u8>>>,
    created: AtomicU64,
    duplicates: AtomicU64,
    discarded: AtomicU64,
    explored: AtomicU64,
    transitions: AtomicU64,
    reexpansions: AtomicU64,
    best_bits: AtomicU64,
    best: Mutex<BestSlot>,
    initial_cost: f64,
    start: Instant,
    deadline: Option<Instant>,
    halted: AtomicBool,
    timed_out: AtomicBool,
    out_of_budget: AtomicBool,
    /// Nodes scheduled but not yet fully explored (in a frontier, in the
    /// injector, or being expanded). Zero means the search space is drained.
    pending: AtomicUsize,
    injector: Mutex<VecDeque<Node>>,
    injector_len: AtomicUsize,
}

impl<'m, 'a, 'c> SearchCore<'m, 'a, 'c> {
    /// Builds the core. `s0` fixes the initial cost baseline and pre-loads
    /// the best tracker, but is **not** admitted into the dedup table —
    /// seeds are admitted when the driver schedules them.
    pub fn new(s0: &State, model: &'m CostModel<'a>, cfg: &'c SearchConfig) -> Self {
        let start = Instant::now();
        let initial_cost = model.cost(s0);
        let dedup = (0..DEDUP_SHARDS)
            .map(|_| Mutex::new(FxHashMap::default()))
            .collect();
        SearchCore {
            model,
            cfg,
            tcfg: TransitionConfig {
                vb_overlap_limit: cfg.vb_overlap_limit,
            },
            workers: cfg.effective_parallelism().max(1),
            dedup,
            created: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            explored: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            reexpansions: AtomicU64::new(0),
            best_bits: AtomicU64::new(initial_cost.to_bits()),
            best: Mutex::new(BestSlot {
                cost: initial_cost,
                sig: s0.signature(),
                state: s0.clone(),
                trace: vec![(0.0, initial_cost)],
            }),
            initial_cost,
            start,
            deadline: cfg.time_budget.map(|d| start + d),
            halted: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            out_of_budget: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
        }
    }

    /// Number of explorer threads this core drives per exploration.
    pub fn workers(&self) -> usize {
        self.workers
    }

    // -- counters ------------------------------------------------------

    /// Counts `n` created states and folds in the shared state budget:
    /// crossing `max_states` halts every explorer.
    pub fn count_created(&self, n: u64) {
        let total = self.created.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.cfg.max_states {
            if total as usize >= max {
                self.out_of_budget.store(true, Ordering::Relaxed);
                self.halted.store(true, Ordering::Relaxed);
            }
        }
    }

    pub fn count_duplicates(&self, n: u64) {
        self.duplicates.fetch_add(n, Ordering::Relaxed);
    }

    pub fn count_discarded(&self, n: u64) {
        self.discarded.fetch_add(n, Ordering::Relaxed);
    }

    pub fn count_explored(&self, n: u64) {
        self.explored.fetch_add(n, Ordering::Relaxed);
    }

    /// Whether the search must stop (time or state budget). Cheap: one
    /// atomic load plus a clock read only while a deadline is armed.
    pub fn check_halted(&self) -> bool {
        if self.halted.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.timed_out.store(true, Ordering::Relaxed);
                self.halted.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    // -- state admission -----------------------------------------------

    /// Whether a state is rejected by the configured stop conditions.
    pub fn rejected(&self, s: &State) -> bool {
        (self.cfg.stop_tt && s.views().any(|v| v.is_triple_table()))
            || (self.cfg.stop_var && s.views().any(|v| v.all_variables()))
    }

    /// Registers a reached state against the striped dedup table.
    pub fn admit(&self, s: &State, phase: u8) -> Admission {
        self.count_created(1);
        if self.rejected(s) {
            self.count_discarded(1);
            return Admission::Discarded;
        }
        let sig = s.signature();
        let decision = {
            let mut shard = lock_unpoisoned(self.shard(sig));
            match shard.entry(sig) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if phase < *e.get() {
                        // Reached through an earlier phase: must re-expand
                        // for the stratified strategies to stay exhaustive.
                        e.insert(phase);
                        Admission::Reexpand
                    } else {
                        Admission::Duplicate
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(phase);
                    Admission::New { cost: 0.0, sig }
                }
            }
        };
        match decision {
            Admission::New { .. } => {
                // Cost estimation is the expensive part — do it outside
                // the stripe lock.
                let cost = self.model.cost(s);
                self.consider_best(s, cost, sig);
                Admission::New { cost, sig }
            }
            Admission::Reexpand => {
                self.count_duplicates(1);
                self.reexpansions.fetch_add(1, Ordering::Relaxed);
                Admission::Reexpand
            }
            Admission::Duplicate => {
                self.count_duplicates(1);
                Admission::Duplicate
            }
            // xlint: allow(X001, reason = "rejected states return Discarded before the shard probe above")
            Admission::Discarded => unreachable!(),
        }
    }

    /// Admits a seed state, *forcing* it onto the frontier even when the
    /// dedup table already knows it (GSTR re-seeds each phase with the
    /// previous phase's winner; a forced re-seed is counted as created +
    /// duplicate + re-expansion so the counter invariant
    /// `created + reexpansions == duplicates + discarded + explored +
    /// frontier_remaining` holds). Seeds bypass the stop conditions, like
    /// `S0` always did. Returns the seed's cost and signature.
    pub fn admit_seed(&self, s: &State, phase: u8) -> (f64, u128) {
        self.count_created(1);
        let sig = s.signature();
        let known = {
            let mut shard = lock_unpoisoned(self.shard(sig));
            match shard.entry(sig) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if phase < *e.get() {
                        e.insert(phase);
                    }
                    true
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(phase);
                    false
                }
            }
        };
        let cost = self.model.cost(s);
        if known {
            self.count_duplicates(1);
            self.reexpansions.fetch_add(1, Ordering::Relaxed);
        } else {
            self.consider_best(s, cost, sig);
        }
        (cost, sig)
    }

    fn shard(&self, sig: u128) -> &Mutex<FxHashMap<u128, u8>> {
        &self.dedup[(sig as usize) & (DEDUP_SHARDS - 1)]
    }

    fn consider_best(&self, s: &State, cost: f64, sig: u128) {
        // Fast gate: strictly worse candidates never touch the lock.
        if cost > f64::from_bits(self.best_bits.load(Ordering::Relaxed)) {
            return;
        }
        let mut best = lock_unpoisoned(&self.best);
        if cost < best.cost {
            best.cost = cost;
            best.sig = sig;
            best.state = s.clone();
            best.trace.push((self.start.elapsed().as_secs_f64(), cost));
            self.best_bits.store(cost.to_bits(), Ordering::Relaxed);
        } else if cost == best.cost && sig < best.sig {
            // Deterministic tie-break: among equal-cost states the smaller
            // signature wins, whatever the exploration order was.
            best.sig = sig;
            best.state = s.clone();
        }
    }

    // -- transition application ----------------------------------------

    /// Applies the AVF fixpoint: all fusions, eagerly; intermediate states
    /// are counted created-and-discarded, matching the paper's accounting.
    pub fn avf_fixpoint(&self, mut s: State) -> State {
        loop {
            let vfs = enumerate(&s, TransitionKind::Vf, &self.tcfg);
            let Some(t) = vfs.first() else {
                return s;
            };
            let fused = apply(&s, t);
            self.transitions.fetch_add(1, Ordering::Relaxed);
            // Does another fusion remain? If so this state is intermediate.
            if !enumerate(&fused, TransitionKind::Vf, &self.tcfg).is_empty() {
                self.count_created(1);
                self.count_discarded(1);
            }
            s = fused;
        }
    }

    /// Produces the successor of `s` by `t`, AVF-collapsed if configured.
    pub fn step(&self, s: &State, t: &Transition) -> State {
        self.transitions.fetch_add(1, Ordering::Relaxed);
        let next = apply(s, t);
        if self.cfg.avf {
            self.avf_fixpoint(next)
        } else {
            next
        }
    }

    // -- the explorer loop ---------------------------------------------

    /// Explores the closure of `seeds` under `mode`'s transitions using
    /// `self.workers` explorer threads (inline on the calling thread when
    /// 1). `run_best` additionally tracks the best state admitted *during
    /// this call* (the GSTR phase winner), seeds included.
    pub fn explore(
        &self,
        seeds: Vec<State>,
        policy: FrontierPolicy,
        mode: CursorMode,
        run_best: Option<&BestCell>,
    ) {
        let nodes: Vec<Node> = seeds
            .into_iter()
            .map(|s| {
                let (cost, sig) = self.admit_seed(&s, mode.seed_phase_tag());
                let state = Arc::new(s);
                if let Some(rb) = run_best {
                    rb.offer(cost, sig, &state);
                }
                self.pending.fetch_add(1, Ordering::Release);
                Node::new(state, mode.seed_cursor())
            })
            .collect();
        if self.workers > 1 {
            {
                let mut inj = lock_unpoisoned(&self.injector);
                inj.extend(nodes);
                self.injector_len.store(inj.len(), Ordering::Relaxed);
            }
            std::thread::scope(|scope| {
                for _ in 0..self.workers {
                    scope.spawn(|| self.explorer(Frontier::new(policy), mode, run_best));
                }
            });
        } else {
            let mut local = Frontier::new(policy);
            for n in nodes {
                local.push(n);
            }
            self.explorer(local, mode, run_best);
        }
    }

    /// One explorer: drains its local frontier, steals when idle, stops
    /// when the run halts or the global pending count hits zero.
    fn explorer(&self, mut local: Frontier, mode: CursorMode, run_best: Option<&BestCell>) {
        let mut idle_spins = 0u32;
        loop {
            if self.check_halted() {
                break;
            }
            let node = local.pop().or_else(|| self.steal_global());
            let Some(node) = node else {
                if self.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                idle_spins += 1;
                if idle_spins > 64 {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                } else {
                    std::thread::yield_now();
                }
                continue;
            };
            idle_spins = 0;
            self.expand_once(node, &mut local, mode, run_best);
        }
        // A halted explorer abandons its local frontier without touching
        // `pending`: the leftover is reported as `frontier_remaining`.
    }

    /// Draws transitions from `node`'s cursor until one schedules a new
    /// (or re-expandable) successor, then re-queues both per the frontier
    /// policy; an exhausted cursor marks the state explored.
    fn expand_once(
        &self,
        mut node: Node,
        local: &mut Frontier,
        mode: CursorMode,
        run_best: Option<&BestCell>,
    ) {
        loop {
            if self.check_halted() {
                // Dropped mid-expansion: stays in `pending` as remainder.
                return;
            }
            let Some(t) = node.cursor.next(&node.state, &self.tcfg) else {
                self.count_explored(1);
                self.pending.fetch_sub(1, Ordering::Release);
                return;
            };
            let next = self.step(&node.state, &t);
            let schedule = match self.admit(&next, mode.phase_tag(&t)) {
                Admission::New { cost, sig } => Some((cost, sig, true)),
                Admission::Reexpand => Some((0.0, 0, false)),
                Admission::Duplicate | Admission::Discarded => None,
            };
            if let Some((cost, sig, fresh)) = schedule {
                let child = Node::new(Arc::new(next), mode.successor_cursor(&t));
                if fresh {
                    if let Some(rb) = run_best {
                        rb.offer(cost, sig, &child.state);
                    }
                }
                self.pending.fetch_add(1, Ordering::Release);
                // Freshly admitted nodes are the only ones guaranteed to
                // hold unexplored work (the shared dedup table eats the
                // subtrees of older nodes), so when siblings are hungry
                // the *child* is what gets donated; the parent stays local
                // to keep producing the next sibling.
                if self.workers > 1 && self.injector_len.load(Ordering::Relaxed) < self.workers {
                    local.push(node);
                    self.inject(child);
                } else {
                    local.requeue(node, child);
                }
                return;
            }
        }
    }

    fn steal_global(&self) -> Option<Node> {
        if self.injector_len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut inj = lock_unpoisoned(&self.injector);
        let n = inj.pop_front();
        self.injector_len.store(inj.len(), Ordering::Relaxed);
        n
    }

    /// Places a node on the shared injector for an idle sibling.
    fn inject(&self, node: Node) {
        let mut inj = lock_unpoisoned(&self.injector);
        inj.push_back(node);
        self.injector_len.store(inj.len(), Ordering::Relaxed);
    }

    // -- packaging -----------------------------------------------------

    /// Collects the outcome. Call after every explorer has stopped.
    pub fn finish(self) -> SearchOutcome {
        let best = self
            .best
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let remaining = self.pending.into_inner() as u64;
        SearchOutcome {
            best_state: best.state,
            best_cost: best.cost,
            initial_cost: self.initial_cost,
            stats: SearchStats {
                created: self.created.into_inner(),
                duplicates: self.duplicates.into_inner(),
                discarded: self.discarded.into_inner(),
                explored: self.explored.into_inner(),
                transitions: self.transitions.into_inner(),
                reexpansions: self.reexpansions.into_inner(),
                frontier_remaining: remaining,
                best_cost_trace: best.trace,
                out_of_budget: self.out_of_budget.into_inner(),
                timed_out: self.timed_out.into_inner(),
                elapsed: self.start.elapsed(),
            },
        }
    }
}
