//! Frontiers and transition cursors — the exploration-order layer of the
//! search core.
//!
//! A [`Frontier`] owns the pending [`Node`]s of one explorer (worker
//! thread) and fixes the exploration discipline:
//!
//! * [`FrontierPolicy::Fifo`] — Algorithm 2's candidate *queue*
//!   (EXNAIVE / EXSTR): breadth-flavored, one transition per turn;
//! * [`FrontierPolicy::Lifo`] — the DFS *stack*: each branch is fully
//!   explored before backtracking, keeping the frontier small;
//! * [`FrontierPolicy::BestOnly`] — GSTR's between-phase retention: the
//!   frontier collapses to the single best state after each transition
//!   phase (implemented by the phase driver re-seeding with the phase
//!   winner; within a phase the closure is explored Lifo).
//!
//! Every policy exposes `push` (schedule a node), `requeue` (re-insert
//! the node being expanded with its fresh successor, in the policy's
//! sequential order) and `pop` (take the next node to expand, from the
//! policy's hot end). Cross-explorer work sharing does not steal from
//! these local frontiers: the shared dedup table eats the subtrees of
//! older nodes, so the engine donates *freshly admitted* nodes — the only
//! ones guaranteed to hold unexplored work — to a shared injector instead
//! (see the engine's explorer loop).
//!
//! [`Cursor`] lazily enumerates a state's outgoing transitions one
//! stratification phase at a time, so queued states don't hold their full
//! transition lists in memory.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::state::State;
use crate::transitions::{enumerate, Transition, TransitionConfig, TransitionKind};

// ---------------------------------------------------------------------
// Lazy per-state transition cursors
// ---------------------------------------------------------------------

/// Lazily enumerates the transitions of a state, one stratification phase
/// at a time, so queued states don't hold their full transition lists.
pub(crate) struct Cursor {
    kinds: Vec<TransitionKind>,
    kind_idx: usize,
    list: Vec<Transition>,
    pos: usize,
}

impl Cursor {
    /// All four kinds (naive exploration).
    pub fn all() -> Self {
        Self::for_kinds(TransitionKind::ALL.to_vec())
    }

    /// Kinds allowed from a state whose path ends in `phase`, in
    /// stratified order.
    pub fn stratified(phase: TransitionKind) -> Self {
        Self::for_kinds(
            TransitionKind::ALL
                .into_iter()
                .filter(|k| *k >= phase)
                .collect(),
        )
    }

    /// A single kind (GSTR phases).
    pub fn single(kind: TransitionKind) -> Self {
        Self::for_kinds(vec![kind])
    }

    fn for_kinds(kinds: Vec<TransitionKind>) -> Self {
        Cursor {
            kinds,
            kind_idx: 0,
            list: Vec::new(),
            pos: 0,
        }
    }

    /// The next transition, if any.
    pub fn next(&mut self, state: &State, tcfg: &TransitionConfig) -> Option<Transition> {
        loop {
            if self.pos < self.list.len() {
                let t = self.list[self.pos].clone();
                self.pos += 1;
                return Some(t);
            }
            if self.kind_idx >= self.kinds.len() {
                return None;
            }
            self.list = enumerate(state, self.kinds[self.kind_idx], tcfg);
            self.pos = 0;
            self.kind_idx += 1;
        }
    }
}

/// How successor cursors are built — the strategy's stratification rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CursorMode {
    /// Every state receives all four transition kinds (EXNAIVE).
    All,
    /// A state reached through a `kind` transition only receives kinds
    /// `>= kind` — the VB* SC* JC* VF* stratification (EXSTR / DFS).
    Stratified,
    /// Only one kind is applied (a GSTR phase closure).
    Single(TransitionKind),
}

impl CursorMode {
    /// The cursor for a state reached through `via`.
    pub fn successor_cursor(&self, via: &Transition) -> Cursor {
        match self {
            CursorMode::All => Cursor::all(),
            CursorMode::Stratified => Cursor::stratified(via.kind()),
            CursorMode::Single(kind) => Cursor::single(*kind),
        }
    }

    /// The cursor for a seed state (no incoming transition).
    pub fn seed_cursor(&self) -> Cursor {
        match self {
            CursorMode::All => Cursor::all(),
            CursorMode::Stratified => Cursor::stratified(TransitionKind::Vb),
            CursorMode::Single(kind) => Cursor::single(*kind),
        }
    }

    /// The dedup phase tag of a state reached through `via` (states
    /// re-reached at a strictly lower tag are re-expanded so the
    /// stratified strategies stay exhaustive; EXNAIVE tags everything 0).
    pub fn phase_tag(&self, via: &Transition) -> u8 {
        match self {
            CursorMode::All => 0,
            CursorMode::Stratified => via.kind() as u8,
            CursorMode::Single(kind) => *kind as u8,
        }
    }

    /// The dedup phase tag of a seed state.
    pub fn seed_phase_tag(&self) -> u8 {
        match self {
            CursorMode::All => 0,
            CursorMode::Stratified => TransitionKind::Vb as u8,
            CursorMode::Single(kind) => *kind as u8,
        }
    }
}

// ---------------------------------------------------------------------
// Nodes and frontiers
// ---------------------------------------------------------------------

/// One pending unit of exploration: a state plus the cursor over its
/// untried transitions. The state is behind an [`Arc`] so that handing a
/// node to another explorer (work stealing) or re-queuing it costs a
/// pointer copy, never a deep clone of the view set.
pub(crate) struct Node {
    pub state: Arc<State>,
    pub cursor: Cursor,
}

impl Node {
    pub fn new(state: Arc<State>, cursor: Cursor) -> Self {
        Node { state, cursor }
    }
}

/// The exploration discipline of a [`Frontier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrontierPolicy {
    /// Candidate queue (EXNAIVE / EXSTR): pop the oldest pending node.
    Fifo,
    /// Stack (DFS): pop the newest pending node.
    Lifo,
    /// Best-only between phases (GSTR): within a phase the closure is
    /// explored like a stack; the phase driver collapses the frontier to
    /// the phase's best state before the next phase.
    BestOnly,
}

/// A frontier of pending nodes under one [`FrontierPolicy`].
pub(crate) struct Frontier {
    policy: FrontierPolicy,
    nodes: VecDeque<Node>,
}

impl Frontier {
    pub fn new(policy: FrontierPolicy) -> Self {
        Frontier {
            policy,
            nodes: VecDeque::new(),
        }
    }

    /// Schedules a node.
    pub fn push(&mut self, node: Node) {
        self.nodes.push_back(node);
    }

    /// Re-schedules the node being expanded together with its freshly
    /// created successor, in the order the policy's sequential semantics
    /// prescribe: a queue parks the parent *behind* the child (Algorithm 2
    /// re-appends the state after `applyTrans`), a stack keeps the parent
    /// below and expands the child next.
    pub fn requeue(&mut self, parent: Node, child: Node) {
        match self.policy {
            FrontierPolicy::Fifo => {
                self.nodes.push_back(child);
                self.nodes.push_back(parent);
            }
            FrontierPolicy::Lifo | FrontierPolicy::BestOnly => {
                self.nodes.push_back(parent);
                self.nodes.push_back(child);
            }
        }
    }

    /// The next node to expand (the policy's hot end).
    pub fn pop(&mut self) -> Option<Node> {
        match self.policy {
            FrontierPolicy::Fifo => self.nodes.pop_front(),
            FrontierPolicy::Lifo | FrontierPolicy::BestOnly => self.nodes.pop_back(),
        }
    }
}
