//! Search strategies over the space of candidate view sets (Section 5).
//!
//! All strategies share one bookkeeping core ([`Ctx`]): a signature-based
//! duplicate detector, the Figure 5 counters (created / duplicate /
//! discarded / explored states), a best-state tracker with a
//! cost-over-time trace (Figure 7), stop conditions (Section 5.2) and a
//! state budget standing in for the memory limit that makes the relational
//! competitor strategies fail on large workloads (Section 6.2).
//!
//! Strategies:
//!
//! * [`StrategyKind::ExNaive`] — Algorithm 2, breadth-flavored exhaustive;
//! * [`StrategyKind::ExStr`] — stratified exhaustive (EXSTR): each state
//!   only receives transitions respecting the VB\* SC\* JC\* VF\* order of
//!   its path (Theorem 5.3 guarantees this is still exhaustive);
//! * [`StrategyKind::Dfs`] — stratified depth-first search: fully explores
//!   each branch before backtracking, keeping the candidate set small;
//! * [`StrategyKind::Gstr`] — greedy stratified: keeps only the best state
//!   between transition phases;
//! * [`StrategyKind::Pruning`] / [`StrategyKind::Greedy`] /
//!   [`StrategyKind::Heuristic`] — the divide-and-conquer strategies of
//!   Theodoratos et al. [21], reimplemented for comparison (Section 6.1).
//!
//! The **AVF** optimization (aggressive view fusion) collapses every newly
//! created state to its VF-fixpoint, discarding the intermediate states —
//! safe because VF never increases the cost (Section 3.3).

pub mod competitors;

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use rdf_model::FxHashMap;

use crate::cost::CostModel;
use crate::state::State;
use crate::transitions::{apply, enumerate, Transition, TransitionConfig, TransitionKind};

/// Which strategy drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Algorithm 2: naive exhaustive.
    ExNaive,
    /// Stratified exhaustive.
    ExStr,
    /// Stratified depth-first (the paper's best scaling strategy).
    Dfs,
    /// Greedy stratified.
    Gstr,
    /// Theodoratos et al. Pruning (competitor).
    Pruning,
    /// Theodoratos et al. Greedy (competitor).
    Greedy,
    /// Theodoratos et al. Heuristic (competitor).
    Heuristic,
}

impl StrategyKind {
    /// Short display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::ExNaive => "EXNAIVE",
            StrategyKind::ExStr => "EXSTR",
            StrategyKind::Dfs => "DFS",
            StrategyKind::Gstr => "GSTR",
            StrategyKind::Pruning => "Pruning",
            StrategyKind::Greedy => "Greedy",
            StrategyKind::Heuristic => "Heuristic",
        }
    }
}

/// Search configuration (strategy + heuristics + budgets).
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The driving strategy.
    pub strategy: StrategyKind,
    /// Aggressive view fusion (the `-AVF` suffix of Section 6).
    pub avf: bool,
    /// The `stop_var` condition: discard states with an all-variable view.
    pub stop_var: bool,
    /// The `stop_tt` condition: discard states containing the full triple
    /// table as a view.
    pub stop_tt: bool,
    /// The `stop_time` condition: wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Maximum number of created states — the stand-in for the JVM heap
    /// limit of the paper's experiments; exceeding it sets
    /// [`SearchStats::out_of_budget`].
    pub max_states: Option<usize>,
    /// View Break overlap limit (see
    /// [`TransitionConfig::vb_overlap_limit`]).
    pub vb_overlap_limit: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            strategy: StrategyKind::Dfs,
            avf: true,
            stop_var: true,
            stop_tt: false,
            time_budget: None,
            max_states: Some(500_000),
            vb_overlap_limit: 1,
        }
    }
}

/// Counters and traces of one search run (Figures 5 and 7 plot these).
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// States reached by the search (including duplicates and discarded).
    pub created: u64,
    /// States already attained through a different path.
    pub duplicates: u64,
    /// States excluded by stop conditions (or dropped by AVF collapsing).
    pub discarded: u64,
    /// States whose outgoing transitions were all tried.
    pub explored: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// `(seconds since start, best cost)` — appended whenever the best
    /// improves.
    pub best_cost_trace: Vec<(f64, f64)>,
    /// Whether the state budget was exhausted (the simulated OOM).
    pub out_of_budget: bool,
    /// Whether the time budget expired.
    pub timed_out: bool,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best state found (`Sb`).
    pub best_state: State,
    /// Its estimated cost.
    pub best_cost: f64,
    /// The initial state's cost.
    pub initial_cost: f64,
    /// Counters and traces.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// The paper's *relative cost reduction*:
    /// `(cǫ(S0) − cǫ(Sb)) / cǫ(S0)` (Section 6.1).
    pub fn rcr(&self) -> f64 {
        if self.initial_cost == 0.0 {
            0.0
        } else {
            (self.initial_cost - self.best_cost) / self.initial_cost
        }
    }
}

/// Runs the configured strategy from `s0`.
pub fn search(s0: State, model: &CostModel<'_>, cfg: &SearchConfig) -> SearchOutcome {
    match cfg.strategy {
        StrategyKind::ExNaive => run_queue(s0, model, cfg, false),
        StrategyKind::ExStr => run_queue(s0, model, cfg, true),
        StrategyKind::Dfs => run_dfs(s0, model, cfg),
        StrategyKind::Gstr => run_gstr(s0, model, cfg),
        StrategyKind::Pruning | StrategyKind::Greedy | StrategyKind::Heuristic => {
            competitors::run(s0, model, cfg)
        }
    }
}

// ---------------------------------------------------------------------
// Shared bookkeeping
// ---------------------------------------------------------------------

pub(crate) struct Ctx<'m, 'a, 'c> {
    pub model: &'m CostModel<'a>,
    pub cfg: &'c SearchConfig,
    pub tcfg: TransitionConfig,
    seen: FxHashMap<u128, u8>,
    pub stats: SearchStats,
    best: State,
    best_cost: f64,
    initial_cost: f64,
    start: Instant,
    deadline: Option<Instant>,
    halted: bool,
}

pub(crate) enum Admission {
    /// Unseen state (or re-reached at a strictly lower phase): expand it.
    New,
    /// Already attained.
    Duplicate,
    /// Rejected by a stop condition.
    Discarded,
}

impl<'m, 'a, 'c> Ctx<'m, 'a, 'c> {
    pub fn new(s0: &State, model: &'m CostModel<'a>, cfg: &'c SearchConfig) -> Self {
        let start = Instant::now();
        let initial_cost = model.cost(s0);
        let mut seen = FxHashMap::default();
        seen.insert(s0.signature(), 0u8);
        let mut stats = SearchStats {
            created: 1,
            ..Default::default()
        };
        stats.best_cost_trace.push((0.0, initial_cost));
        Ctx {
            model,
            cfg,
            tcfg: TransitionConfig {
                vb_overlap_limit: cfg.vb_overlap_limit,
            },
            seen,
            stats,
            best: s0.clone(),
            best_cost: initial_cost,
            initial_cost,
            start,
            deadline: cfg.time_budget.map(|d| start + d),
            halted: false,
        }
    }

    /// Whether the search must stop (time or state budget).
    pub fn halted(&mut self) -> bool {
        if self.halted {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.stats.timed_out = true;
                self.halted = true;
            }
        }
        if let Some(max) = self.cfg.max_states {
            if self.stats.created as usize >= max {
                self.stats.out_of_budget = true;
                self.halted = true;
            }
        }
        self.halted
    }

    /// Whether a state is rejected by the configured stop conditions.
    pub(crate) fn rejected(&self, s: &State) -> bool {
        (self.cfg.stop_tt && s.views().any(|v| v.is_triple_table()))
            || (self.cfg.stop_var && s.views().any(|v| v.all_variables()))
    }

    /// Registers a reached state.
    pub fn admit(&mut self, s: &State, phase: u8) -> Admission {
        self.stats.created += 1;
        if self.rejected(s) {
            self.stats.discarded += 1;
            return Admission::Discarded;
        }
        let sig = s.signature();
        match self.seen.entry(sig) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                self.stats.duplicates += 1;
                if phase < *e.get() {
                    // Reached through an earlier phase: must re-expand for
                    // the stratified strategies to stay exhaustive.
                    e.insert(phase);
                    Admission::New
                } else {
                    Admission::Duplicate
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(phase);
                self.consider_best(s);
                Admission::New
            }
        }
    }

    fn consider_best(&mut self, s: &State) {
        let cost = self.model.cost(s);
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best = s.clone();
            self.stats
                .best_cost_trace
                .push((self.start.elapsed().as_secs_f64(), cost));
        }
    }

    /// Applies the AVF fixpoint: all fusions, eagerly; intermediate states
    /// are counted created-and-discarded, matching the paper's accounting.
    pub fn avf_fixpoint(&mut self, mut s: State) -> State {
        loop {
            let vfs = enumerate(&s, TransitionKind::Vf, &self.tcfg);
            let Some(t) = vfs.first() else {
                return s;
            };
            let fused = apply(&s, t);
            self.stats.transitions += 1;
            // Does another fusion remain? If so this state is intermediate.
            if !enumerate(&fused, TransitionKind::Vf, &self.tcfg).is_empty() {
                self.stats.created += 1;
                self.stats.discarded += 1;
            }
            s = fused;
        }
    }

    /// Produces the successor of `s` by `t`, AVF-collapsed if configured.
    pub fn step(&mut self, s: &State, t: &Transition) -> State {
        self.stats.transitions += 1;
        let next = apply(s, t);
        if self.cfg.avf {
            self.avf_fixpoint(next)
        } else {
            next
        }
    }

    pub fn finish(mut self) -> SearchOutcome {
        self.stats.elapsed = self.start.elapsed();
        SearchOutcome {
            best_state: self.best,
            best_cost: self.best_cost,
            initial_cost: self.initial_cost,
            stats: self.stats,
        }
    }
}

// ---------------------------------------------------------------------
// Lazy per-state transition cursors
// ---------------------------------------------------------------------

/// Lazily enumerates the transitions of a state, one stratification phase
/// at a time, so queued states don't hold their full transition lists.
pub(crate) struct Cursor {
    kinds: Vec<TransitionKind>,
    kind_idx: usize,
    list: Vec<Transition>,
    pos: usize,
}

impl Cursor {
    /// All four kinds (naive exploration).
    pub fn all() -> Self {
        Self::for_kinds(TransitionKind::ALL.to_vec())
    }

    /// Kinds allowed from a state whose path ends in `phase`, in
    /// stratified order.
    pub fn stratified(phase: TransitionKind) -> Self {
        Self::for_kinds(
            TransitionKind::ALL
                .into_iter()
                .filter(|k| *k >= phase)
                .collect(),
        )
    }

    /// A single kind (GSTR phases).
    pub fn single(kind: TransitionKind) -> Self {
        Self::for_kinds(vec![kind])
    }

    fn for_kinds(kinds: Vec<TransitionKind>) -> Self {
        Cursor {
            kinds,
            kind_idx: 0,
            list: Vec::new(),
            pos: 0,
        }
    }

    /// The next transition, if any.
    pub fn next(&mut self, state: &State, tcfg: &TransitionConfig) -> Option<Transition> {
        loop {
            if self.pos < self.list.len() {
                let t = self.list[self.pos].clone();
                self.pos += 1;
                return Some(t);
            }
            if self.kind_idx >= self.kinds.len() {
                return None;
            }
            self.list = enumerate(state, self.kinds[self.kind_idx], tcfg);
            self.pos = 0;
            self.kind_idx += 1;
        }
    }
}

fn phase_tag(kind: TransitionKind) -> u8 {
    kind as u8
}

// ---------------------------------------------------------------------
// EXNAIVE / EXSTR (queue-based exhaustive search, Algorithm 2)
// ---------------------------------------------------------------------

fn run_queue(
    s0: State,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    stratified: bool,
) -> SearchOutcome {
    let mut ctx = Ctx::new(&s0, model, cfg);
    let mut cs: VecDeque<(State, Cursor)> = VecDeque::new();
    let cursor = if stratified {
        Cursor::stratified(TransitionKind::Vb)
    } else {
        Cursor::all()
    };
    cs.push_back((s0, cursor));
    while let Some((state, mut cursor)) = cs.pop_front() {
        if ctx.halted() {
            break;
        }
        // applyTrans: find one transition leading to a new state.
        let mut found = false;
        while let Some(t) = cursor.next(&state, &ctx.tcfg) {
            let phase = if stratified { phase_tag(t.kind()) } else { 0 };
            let next = ctx.step(&state, &t);
            if matches!(ctx.admit(&next, phase), Admission::New) {
                let next_cursor = if stratified {
                    Cursor::stratified(t.kind())
                } else {
                    Cursor::all()
                };
                cs.push_back((next, next_cursor));
                found = true;
                break;
            }
            if ctx.halted() {
                break;
            }
        }
        if found {
            cs.push_back((state, cursor));
        } else {
            ctx.stats.explored += 1;
        }
    }
    ctx.finish()
}

// ---------------------------------------------------------------------
// DFS (stratified depth-first)
// ---------------------------------------------------------------------

fn run_dfs(s0: State, model: &CostModel<'_>, cfg: &SearchConfig) -> SearchOutcome {
    let mut ctx = Ctx::new(&s0, model, cfg);
    let mut stack: Vec<(State, Cursor)> = vec![(s0, Cursor::stratified(TransitionKind::Vb))];
    while let Some((state, cursor)) = stack.last_mut() {
        if ctx.halted() {
            break;
        }
        match cursor.next(state, &ctx.tcfg) {
            Some(t) => {
                let phase = phase_tag(t.kind());
                let next = ctx.step(state, &t);
                if matches!(ctx.admit(&next, phase), Admission::New) {
                    stack.push((next, Cursor::stratified(t.kind())));
                }
            }
            None => {
                ctx.stats.explored += 1;
                stack.pop();
            }
        }
    }
    ctx.finish()
}

// ---------------------------------------------------------------------
// GSTR (greedy stratified)
// ---------------------------------------------------------------------

fn run_gstr(s0: State, model: &CostModel<'_>, cfg: &SearchConfig) -> SearchOutcome {
    let mut ctx = Ctx::new(&s0, model, cfg);
    let mut current = s0;
    for kind in TransitionKind::ALL {
        if ctx.halted() {
            break;
        }
        if cfg.avf && kind == TransitionKind::Vf {
            continue; // AVF keeps every state fusion-saturated already
        }
        current = explore_single_kind_closure(&mut ctx, current, kind);
    }
    ctx.finish()
}

/// DFS over the closure of `start` under one transition kind; returns the
/// minimum-cost state of the closure (including `start`).
fn explore_single_kind_closure(
    ctx: &mut Ctx<'_, '_, '_>,
    start: State,
    kind: TransitionKind,
) -> State {
    let mut best = start.clone();
    let mut best_cost = ctx.model.cost(&start);
    let mut stack: Vec<(State, Cursor)> = vec![(start, Cursor::single(kind))];
    while let Some((state, cursor)) = stack.last_mut() {
        if ctx.halted() {
            break;
        }
        match cursor.next(state, &ctx.tcfg) {
            Some(t) => {
                let next = ctx.step(state, &t);
                if matches!(ctx.admit(&next, phase_tag(kind)), Admission::New) {
                    let cost = ctx.model.cost(&next);
                    if cost < best_cost {
                        best_cost = cost;
                        best = next.clone();
                    }
                    stack.push((next, Cursor::single(kind)));
                }
            }
            None => {
                ctx.stats.explored += 1;
                stack.pop();
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostWeights;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;
    use rdf_stats::collect_stats;

    fn two_const_db() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..40 {
            let s = format!("s{i}");
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri(format!("p{}", i % 4)),
                Term::uri("c1"),
            );
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri(format!("r{}", i % 2)),
                Term::uri("c2"),
            );
        }
        db
    }

    /// The Figure 3 workload: q(Y, Z) :- t(X, Y, c1), t(X, Z, c2).
    fn figure3_state(db: &mut Dataset) -> (Vec<rdf_query::ConjunctiveQuery>, State) {
        let q = parse_query("q(Y, Z) :- t(X, Y, <c1>), t(X, Z, <c2>)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![q];
        let s0 = State::initial(&queries);
        (queries, s0)
    }

    fn exhaustive_cfg(strategy: StrategyKind) -> SearchConfig {
        SearchConfig {
            strategy,
            avf: false,
            stop_var: false,
            stop_tt: false,
            time_budget: None,
            max_states: Some(100_000),
            vb_overlap_limit: 1,
        }
    }

    #[test]
    fn figure3_state_lattice_exnaive() {
        // The paper's Figure 3 lattice has exactly 9 states S0–S8.
        let mut db = two_const_db();
        let (_qs, s0) = figure3_state(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &[]);
        let model = CostModel::new(&cat, CostWeights::default());
        let out = search(s0, &model, &exhaustive_cfg(StrategyKind::ExNaive));
        let distinct = out.stats.created - out.stats.duplicates - out.stats.discarded;
        assert_eq!(distinct, 9, "stats: {:?}", out.stats);
        assert!(!out.stats.out_of_budget);
    }

    #[test]
    fn figure3_all_exhaustive_strategies_agree() {
        let mut db = two_const_db();
        let cat = {
            let (qs, _) = figure3_state(&mut db);
            collect_stats(db.store(), db.dict(), &qs)
        };
        let model = CostModel::new(&cat, CostWeights::default());
        let mut costs = Vec::new();
        let mut explored_counts = Vec::new();
        for strat in [
            StrategyKind::ExNaive,
            StrategyKind::ExStr,
            StrategyKind::Dfs,
        ] {
            let (_, s0) = figure3_state(&mut db);
            let out = search(s0, &model, &exhaustive_cfg(strat));
            costs.push(out.best_cost);
            explored_counts.push(out.stats.explored);
            let distinct = out.stats.created - out.stats.duplicates - out.stats.discarded;
            assert_eq!(distinct, 9, "{strat:?}");
        }
        assert!(costs.iter().all(|&c| (c - costs[0]).abs() < 1e-6));
    }

    #[test]
    fn stratified_has_fewer_transitions_than_naive() {
        // Theorem 5.3(ii): EXSTR applies at most as many transitions.
        let mut db = two_const_db();
        let cat = {
            let (qs, _) = figure3_state(&mut db);
            collect_stats(db.store(), db.dict(), &qs)
        };
        let model = CostModel::new(&cat, CostWeights::default());
        let (_, s0a) = figure3_state(&mut db);
        let naive = search(s0a, &model, &exhaustive_cfg(StrategyKind::ExNaive));
        let (_, s0b) = figure3_state(&mut db);
        let strat = search(s0b, &model, &exhaustive_cfg(StrategyKind::ExStr));
        assert!(strat.stats.transitions <= naive.stats.transitions);
    }

    #[test]
    fn gstr_improves_or_matches_initial() {
        let mut db = two_const_db();
        let q = parse_query("q(X) :- t(X, <p0>, <c1>), t(X, <r0>, <c2>)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![q];
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        let out = search(
            State::initial(&queries),
            &model,
            &SearchConfig {
                strategy: StrategyKind::Gstr,
                ..SearchConfig::default()
            },
        );
        assert!(out.best_cost <= out.initial_cost);
        assert!(out.rcr() >= 0.0);
    }

    #[test]
    fn avf_reduces_created_states() {
        let mut db = two_const_db();
        let qa = parse_query("qa(X) :- t(X, <p0>, Y), t(X, <p1>, Z)", db.dict_mut())
            .unwrap()
            .query;
        let qb = parse_query("qb(A) :- t(A, <p0>, B), t(A, <p1>, C)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![qa, qb];
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        let base = SearchConfig {
            strategy: StrategyKind::Dfs,
            avf: false,
            stop_var: true,
            ..SearchConfig::default()
        };
        let no_avf = search(State::initial(&queries), &model, &base);
        let with_avf = search(
            State::initial(&queries),
            &model,
            &SearchConfig { avf: true, ..base },
        );
        assert!(
            with_avf.stats.created <= no_avf.stats.created,
            "AVF: {} vs {}",
            with_avf.stats.created,
            no_avf.stats.created
        );
        // AVF preserves the best cost (it only skips dominated states).
        assert!((with_avf.best_cost - no_avf.best_cost).abs() <= 1e-6 * no_avf.best_cost.abs());
    }

    #[test]
    fn stop_var_discards_states() {
        let mut db = two_const_db();
        let (_qs, s0) = figure3_state(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &[]);
        let model = CostModel::new(&cat, CostWeights::default());
        let mut cfg = exhaustive_cfg(StrategyKind::Dfs);
        cfg.stop_var = true;
        let out = search(s0, &model, &cfg);
        assert!(out.stats.discarded > 0);
        let distinct = out.stats.created - out.stats.duplicates - out.stats.discarded;
        assert!(distinct < 9);
    }

    #[test]
    fn state_budget_flags_oom() {
        let mut db = two_const_db();
        let (_qs, s0) = figure3_state(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &[]);
        let model = CostModel::new(&cat, CostWeights::default());
        let mut cfg = exhaustive_cfg(StrategyKind::Dfs);
        cfg.max_states = Some(3);
        let out = search(s0, &model, &cfg);
        assert!(out.stats.out_of_budget);
    }

    #[test]
    fn cursor_visits_phases_in_stratified_order() {
        let mut db = two_const_db();
        let q = parse_query(
            "q(X) :- t(X, <p0>, <c1>), t(X, <p1>, <c2>), t(X, <r0>, Y)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        let s0 = State::initial(&[q]);
        let tcfg = crate::transitions::TransitionConfig::default();
        let mut cursor = Cursor::stratified(TransitionKind::Vb);
        let mut kinds = Vec::new();
        while let Some(t) = cursor.next(&s0, &tcfg) {
            kinds.push(t.kind());
        }
        // Non-decreasing phase order: VB* SC* JC* VF*.
        for w in kinds.windows(2) {
            assert!(w[0] <= w[1], "{kinds:?}");
        }
        assert!(kinds.contains(&TransitionKind::Vb));
        assert!(kinds.contains(&TransitionKind::Sc));
        assert!(kinds.contains(&TransitionKind::Jc));

        // Starting at SC must not emit any VB.
        let mut cursor = Cursor::stratified(TransitionKind::Sc);
        while let Some(t) = cursor.next(&s0, &tcfg) {
            assert_ne!(t.kind(), TransitionKind::Vb);
        }

        // Single-kind cursors emit only their kind.
        let mut cursor = Cursor::single(TransitionKind::Jc);
        while let Some(t) = cursor.next(&s0, &tcfg) {
            assert_eq!(t.kind(), TransitionKind::Jc);
        }
    }

    #[test]
    fn search_stats_add_up() {
        // created = distinct + duplicates + discarded, for a completed
        // exhaustive run.
        let mut db = two_const_db();
        let (_qs, s0) = figure3_state(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &[]);
        let model = CostModel::new(&cat, CostWeights::default());
        let out = search(s0, &model, &exhaustive_cfg(StrategyKind::Dfs));
        let distinct = out.stats.created - out.stats.duplicates - out.stats.discarded;
        assert_eq!(distinct, 9);
        // Every distinct state was fully explored (complete run).
        assert_eq!(out.stats.explored, distinct);
        assert!(!out.stats.timed_out);
    }

    #[test]
    fn time_budget_halts() {
        let mut db = two_const_db();
        let (_qs, s0) = figure3_state(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &[]);
        let model = CostModel::new(&cat, CostWeights::default());
        let mut cfg = exhaustive_cfg(StrategyKind::Dfs);
        cfg.time_budget = Some(Duration::from_secs(0));
        let out = search(s0, &model, &cfg);
        assert!(out.stats.timed_out);
        // The initial state is always available as a recommendation.
        assert!(out.best_cost <= out.initial_cost);
    }
}
