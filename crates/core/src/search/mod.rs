//! Search strategies over the space of candidate view sets (Section 5).
//!
//! All strategies share one bookkeeping core ([`engine::SearchCore`]): a
//! signature-based duplicate detector, the Figure 5 counters (created /
//! duplicate / discarded / explored states), a best-state tracker with a
//! cost-over-time trace (Figure 7), stop conditions (Section 5.2) and a
//! state budget standing in for the memory limit that makes the relational
//! competitor strategies fail on large workloads (Section 6.2).
//!
//! Strategies:
//!
//! * [`StrategyKind::ExNaive`] — Algorithm 2, breadth-flavored exhaustive;
//! * [`StrategyKind::ExStr`] — stratified exhaustive (EXSTR): each state
//!   only receives transitions respecting the VB\* SC\* JC\* VF\* order of
//!   its path (Theorem 5.3 guarantees this is still exhaustive);
//! * [`StrategyKind::Dfs`] — stratified depth-first search: fully explores
//!   each branch before backtracking, keeping the candidate set small;
//! * [`StrategyKind::Gstr`] — greedy stratified: keeps only the best state
//!   between transition phases;
//! * [`StrategyKind::Pruning`] / [`StrategyKind::Greedy`] /
//!   [`StrategyKind::Heuristic`] — the divide-and-conquer strategies of
//!   Theodoratos et al. [21], reimplemented for comparison (Section 6.1).
//!
//! The **AVF** optimization (aggressive view fusion) collapses every newly
//! created state to its VF-fixpoint, discarding the intermediate states —
//! safe because VF never increases the cost (Section 3.3).
//!
//! # Search internals: frontiers, explorers and the shared core
//!
//! The search is layered so every strategy is the composition of three
//! reusable pieces:
//!
//! 1. **Frontier** ([`frontier`]) — the exploration-order layer. A
//!    [`Frontier`](frontier::Frontier) owns pending nodes (state + lazy
//!    transition [`Cursor`](frontier::Cursor)) under a policy: *queue*
//!    (EXNAIVE/EXSTR, Algorithm 2's candidate set), *stack* (DFS), or
//!    *best-only* between GSTR phases. Nodes hold their state behind an
//!    `Arc`, so moving one between explorers is a pointer copy.
//! 2. **Shared core** ([`engine`]) — one
//!    [`SearchCore`](engine::SearchCore) per run: a sharded, lock-striped
//!    signature table for duplicate detection, relaxed-atomic Figure 5
//!    counters with the shared `max_states` budget folded into the
//!    `created` increment, and a gated best tracker whose exact-cost ties
//!    break on the state signature (so the winner is order-independent).
//! 3. **Explorers** — [`SearchConfig::parallelism`] threads per search
//!    (default 1). Each explorer drains a private frontier and donates its
//!    shallowest node to a shared injector whenever siblings might starve;
//!    idle explorers steal from the injector and stop when the global
//!    pending count reaches zero. Exploration *order* differs across
//!    thread counts, but the reachable state set — and therefore the best
//!    cost of a completed run — does not.
//!
//! For the frontier strategies (EXNAIVE / EXSTR / DFS / GSTR) the
//! counters keep one cross-thread invariant that tests (and the bench
//! harness) check: `created + reexpansions == duplicates + discarded +
//! explored + frontier_remaining`, where
//! [`SearchStats::frontier_remaining`] is the scheduled-but-unexplored
//! remainder of a budget-truncated run. The competitor strategies
//! reproduce the paper's divide-and-conquer accounting instead (partial
//! states are created and recombined, never scheduled on a frontier), so
//! their ledger intentionally does not balance this way.

pub mod competitors;
pub(crate) mod engine;
pub(crate) mod frontier;

use std::time::Duration;

use crate::cost::CostModel;
use crate::state::State;
use crate::transitions::TransitionKind;

use engine::{BestCell, SearchCore};
#[cfg(test)]
use frontier::Cursor;
use frontier::{CursorMode, FrontierPolicy};

/// Which strategy drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Algorithm 2: naive exhaustive.
    ExNaive,
    /// Stratified exhaustive.
    ExStr,
    /// Stratified depth-first (the paper's best scaling strategy).
    Dfs,
    /// Greedy stratified.
    Gstr,
    /// Theodoratos et al. Pruning (competitor).
    Pruning,
    /// Theodoratos et al. Greedy (competitor).
    Greedy,
    /// Theodoratos et al. Heuristic (competitor).
    Heuristic,
}

impl StrategyKind {
    /// Short display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::ExNaive => "EXNAIVE",
            StrategyKind::ExStr => "EXSTR",
            StrategyKind::Dfs => "DFS",
            StrategyKind::Gstr => "GSTR",
            StrategyKind::Pruning => "Pruning",
            StrategyKind::Greedy => "Greedy",
            StrategyKind::Heuristic => "Heuristic",
        }
    }
}

/// Search configuration (strategy + heuristics + budgets).
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The driving strategy.
    pub strategy: StrategyKind,
    /// Aggressive view fusion (the `-AVF` suffix of Section 6).
    pub avf: bool,
    /// The `stop_var` condition: discard states with an all-variable view.
    pub stop_var: bool,
    /// The `stop_tt` condition: discard states containing the full triple
    /// table as a view.
    pub stop_tt: bool,
    /// The `stop_time` condition: wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Maximum number of created states — the stand-in for the JVM heap
    /// limit of the paper's experiments; exceeding it sets
    /// [`SearchStats::out_of_budget`].
    pub max_states: Option<usize>,
    /// View Break overlap limit (see
    /// [`TransitionConfig::vb_overlap_limit`]).
    ///
    /// [`TransitionConfig::vb_overlap_limit`]:
    /// crate::transitions::TransitionConfig::vb_overlap_limit
    pub vb_overlap_limit: usize,
    /// Explorer threads expanding one search's state space concurrently.
    /// `1` (the default) runs the classic sequential loop inline; `0`
    /// means "one per available core". Parallel runs visit states in a
    /// different order but complete to the same reachable set, so a
    /// non-truncated run reports the same best cost at any thread count.
    pub parallelism: usize,
}

impl SearchConfig {
    /// Resolves [`SearchConfig::parallelism`]: `0` becomes the number of
    /// available cores.
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            strategy: StrategyKind::Dfs,
            avf: true,
            stop_var: true,
            stop_tt: false,
            time_budget: None,
            max_states: Some(500_000),
            vb_overlap_limit: 1,
            parallelism: 1,
        }
    }
}

/// Counters and traces of one search run (Figures 5 and 7 plot these).
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// States reached by the search (including duplicates and discarded).
    pub created: u64,
    /// States already attained through a different path.
    pub duplicates: u64,
    /// States excluded by stop conditions (or dropped by AVF collapsing).
    pub discarded: u64,
    /// States whose outgoing transitions were all tried.
    pub explored: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Known states scheduled for another expansion: re-reached at a
    /// strictly lower stratification phase (Theorem 5.3's completeness
    /// repair) or force-re-seeded by a GSTR phase. Each is also counted in
    /// [`SearchStats::duplicates`].
    pub reexpansions: u64,
    /// States still scheduled when the run stopped (0 for a completed
    /// run). For the frontier strategies (EXNAIVE / EXSTR / DFS / GSTR)
    /// the counters satisfy `created + reexpansions ==
    /// duplicates + discarded + explored + frontier_remaining`; the
    /// competitor strategies use the paper's divide-and-conquer
    /// accounting, which does not schedule states on a frontier.
    pub frontier_remaining: u64,
    /// `(seconds since start, best cost)` — appended whenever the best
    /// improves.
    pub best_cost_trace: Vec<(f64, f64)>,
    /// Whether the state budget was exhausted (the simulated OOM).
    pub out_of_budget: bool,
    /// Whether the time budget expired.
    pub timed_out: bool,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best state found (`Sb`).
    pub best_state: State,
    /// Its estimated cost.
    pub best_cost: f64,
    /// The initial state's cost.
    pub initial_cost: f64,
    /// Counters and traces.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// The paper's *relative cost reduction*:
    /// `(cǫ(S0) − cǫ(Sb)) / cǫ(S0)` (Section 6.1).
    pub fn rcr(&self) -> f64 {
        if self.initial_cost == 0.0 {
            0.0
        } else {
            (self.initial_cost - self.best_cost) / self.initial_cost
        }
    }
}

/// Runs the configured strategy from `s0`.
pub fn search(s0: State, model: &CostModel<'_>, cfg: &SearchConfig) -> SearchOutcome {
    search_seeded(s0, None, model, cfg)
}

/// Runs the configured strategy from `s0`, optionally **warm-started**:
/// when `warm` holds a seed state (a previous recommendation's surviving
/// views re-assembled for the current workload), the frontier starts at
/// that seed instead of `s0` and the search explores its transition
/// closure — a local search around the previous optimum that typically
/// creates far fewer states than a cold run. `s0` still fixes the
/// initial-cost baseline and remains the fallback best state, so the
/// outcome is never worse than no materialization. The competitor
/// strategies ignore the seed (their divide-and-conquer scheme has no
/// frontier to seed).
pub fn search_seeded(
    s0: State,
    warm: Option<State>,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
) -> SearchOutcome {
    let core = SearchCore::new(&s0, model, cfg);
    match cfg.strategy {
        StrategyKind::ExNaive => {
            core.explore(
                vec![warm.unwrap_or(s0)],
                FrontierPolicy::Fifo,
                CursorMode::All,
                None,
            );
            core.finish()
        }
        StrategyKind::ExStr => {
            core.explore(
                vec![warm.unwrap_or(s0)],
                FrontierPolicy::Fifo,
                CursorMode::Stratified,
                None,
            );
            core.finish()
        }
        StrategyKind::Dfs => {
            core.explore(
                vec![warm.unwrap_or(s0)],
                FrontierPolicy::Lifo,
                CursorMode::Stratified,
                None,
            );
            core.finish()
        }
        StrategyKind::Gstr => run_gstr(core, warm.unwrap_or(s0)),
        StrategyKind::Pruning | StrategyKind::Greedy | StrategyKind::Heuristic => {
            competitors::run(&core, &s0);
            core.finish()
        }
    }
}

// ---------------------------------------------------------------------
// GSTR (greedy stratified)
// ---------------------------------------------------------------------

/// GSTR: for each transition kind in stratified order, explore the closure
/// of the current state under that kind alone and keep only the closure's
/// best state for the next phase (the frontier collapses to *best-only*
/// between phases).
fn run_gstr(core: SearchCore<'_, '_, '_>, start: State) -> SearchOutcome {
    let mut current = std::sync::Arc::new(start);
    for kind in TransitionKind::ALL {
        if core.check_halted() {
            break;
        }
        if core.cfg.avf && kind == TransitionKind::Vf {
            continue; // AVF keeps every state fusion-saturated already
        }
        let phase_best = BestCell::new();
        core.explore(
            vec![(*current).clone()],
            FrontierPolicy::BestOnly,
            CursorMode::Single(kind),
            Some(&phase_best),
        );
        if let Some(winner) = phase_best.take() {
            current = winner;
        }
    }
    core.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostWeights;
    use crate::transitions::TransitionConfig;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;
    use rdf_stats::collect_stats;

    fn two_const_db() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..40 {
            let s = format!("s{i}");
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri(format!("p{}", i % 4)),
                Term::uri("c1"),
            );
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri(format!("r{}", i % 2)),
                Term::uri("c2"),
            );
        }
        db
    }

    /// The Figure 3 workload: q(Y, Z) :- t(X, Y, c1), t(X, Z, c2).
    fn figure3_state(db: &mut Dataset) -> (Vec<rdf_query::ConjunctiveQuery>, State) {
        let q = parse_query("q(Y, Z) :- t(X, Y, <c1>), t(X, Z, <c2>)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![q];
        let s0 = State::initial(&queries);
        (queries, s0)
    }

    fn exhaustive_cfg(strategy: StrategyKind) -> SearchConfig {
        SearchConfig {
            strategy,
            avf: false,
            stop_var: false,
            stop_tt: false,
            time_budget: None,
            max_states: Some(100_000),
            vb_overlap_limit: 1,
            parallelism: 1,
        }
    }

    #[test]
    fn figure3_state_lattice_exnaive() {
        // The paper's Figure 3 lattice has exactly 9 states S0–S8.
        let mut db = two_const_db();
        let (_qs, s0) = figure3_state(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &[]);
        let model = CostModel::new(&cat, CostWeights::default());
        let out = search(s0, &model, &exhaustive_cfg(StrategyKind::ExNaive));
        let distinct = out.stats.created - out.stats.duplicates - out.stats.discarded;
        assert_eq!(distinct, 9, "stats: {:?}", out.stats);
        assert!(!out.stats.out_of_budget);
    }

    #[test]
    fn figure3_all_exhaustive_strategies_agree() {
        let mut db = two_const_db();
        let cat = {
            let (qs, _) = figure3_state(&mut db);
            collect_stats(db.store(), db.dict(), &qs)
        };
        let model = CostModel::new(&cat, CostWeights::default());
        let mut costs = Vec::new();
        let mut explored_counts = Vec::new();
        for strat in [
            StrategyKind::ExNaive,
            StrategyKind::ExStr,
            StrategyKind::Dfs,
        ] {
            let (_, s0) = figure3_state(&mut db);
            let out = search(s0, &model, &exhaustive_cfg(strat));
            costs.push(out.best_cost);
            explored_counts.push(out.stats.explored);
            let distinct = out.stats.created - out.stats.duplicates - out.stats.discarded;
            assert_eq!(distinct, 9, "{strat:?}");
        }
        assert!(costs.iter().all(|&c| (c - costs[0]).abs() < 1e-6));
    }

    #[test]
    fn stratified_has_fewer_transitions_than_naive() {
        // Theorem 5.3(ii): EXSTR applies at most as many transitions.
        let mut db = two_const_db();
        let cat = {
            let (qs, _) = figure3_state(&mut db);
            collect_stats(db.store(), db.dict(), &qs)
        };
        let model = CostModel::new(&cat, CostWeights::default());
        let (_, s0a) = figure3_state(&mut db);
        let naive = search(s0a, &model, &exhaustive_cfg(StrategyKind::ExNaive));
        let (_, s0b) = figure3_state(&mut db);
        let strat = search(s0b, &model, &exhaustive_cfg(StrategyKind::ExStr));
        assert!(strat.stats.transitions <= naive.stats.transitions);
    }

    #[test]
    fn gstr_improves_or_matches_initial() {
        let mut db = two_const_db();
        let q = parse_query("q(X) :- t(X, <p0>, <c1>), t(X, <r0>, <c2>)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![q];
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        let out = search(
            State::initial(&queries),
            &model,
            &SearchConfig {
                strategy: StrategyKind::Gstr,
                ..SearchConfig::default()
            },
        );
        assert!(out.best_cost <= out.initial_cost);
        assert!(out.rcr() >= 0.0);
    }

    #[test]
    fn avf_reduces_created_states() {
        let mut db = two_const_db();
        let qa = parse_query("qa(X) :- t(X, <p0>, Y), t(X, <p1>, Z)", db.dict_mut())
            .unwrap()
            .query;
        let qb = parse_query("qb(A) :- t(A, <p0>, B), t(A, <p1>, C)", db.dict_mut())
            .unwrap()
            .query;
        let queries = vec![qa, qb];
        let cat = collect_stats(db.store(), db.dict(), &queries);
        let model = CostModel::new(&cat, CostWeights::default());
        let base = SearchConfig {
            strategy: StrategyKind::Dfs,
            avf: false,
            stop_var: true,
            ..SearchConfig::default()
        };
        let no_avf = search(State::initial(&queries), &model, &base);
        let with_avf = search(
            State::initial(&queries),
            &model,
            &SearchConfig { avf: true, ..base },
        );
        assert!(
            with_avf.stats.created <= no_avf.stats.created,
            "AVF: {} vs {}",
            with_avf.stats.created,
            no_avf.stats.created
        );
        // AVF preserves the best cost (it only skips dominated states).
        assert!((with_avf.best_cost - no_avf.best_cost).abs() <= 1e-6 * no_avf.best_cost.abs());
    }

    #[test]
    fn stop_var_discards_states() {
        let mut db = two_const_db();
        let (_qs, s0) = figure3_state(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &[]);
        let model = CostModel::new(&cat, CostWeights::default());
        let mut cfg = exhaustive_cfg(StrategyKind::Dfs);
        cfg.stop_var = true;
        let out = search(s0, &model, &cfg);
        assert!(out.stats.discarded > 0);
        let distinct = out.stats.created - out.stats.duplicates - out.stats.discarded;
        assert!(distinct < 9);
    }

    #[test]
    fn state_budget_flags_oom() {
        let mut db = two_const_db();
        let (_qs, s0) = figure3_state(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &[]);
        let model = CostModel::new(&cat, CostWeights::default());
        let mut cfg = exhaustive_cfg(StrategyKind::Dfs);
        cfg.max_states = Some(3);
        let out = search(s0, &model, &cfg);
        assert!(out.stats.out_of_budget);
    }

    #[test]
    fn cursor_visits_phases_in_stratified_order() {
        let mut db = two_const_db();
        let q = parse_query(
            "q(X) :- t(X, <p0>, <c1>), t(X, <p1>, <c2>), t(X, <r0>, Y)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        let s0 = State::initial(&[q]);
        let tcfg = TransitionConfig::default();
        let mut cursor = Cursor::stratified(TransitionKind::Vb);
        let mut kinds = Vec::new();
        while let Some(t) = cursor.next(&s0, &tcfg) {
            kinds.push(t.kind());
        }
        // Non-decreasing phase order: VB* SC* JC* VF*.
        for w in kinds.windows(2) {
            assert!(w[0] <= w[1], "{kinds:?}");
        }
        assert!(kinds.contains(&TransitionKind::Vb));
        assert!(kinds.contains(&TransitionKind::Sc));
        assert!(kinds.contains(&TransitionKind::Jc));

        // Starting at SC must not emit any VB.
        let mut cursor = Cursor::stratified(TransitionKind::Sc);
        while let Some(t) = cursor.next(&s0, &tcfg) {
            assert_ne!(t.kind(), TransitionKind::Vb);
        }

        // Single-kind cursors emit only their kind.
        let mut cursor = Cursor::single(TransitionKind::Jc);
        while let Some(t) = cursor.next(&s0, &tcfg) {
            assert_eq!(t.kind(), TransitionKind::Jc);
        }
    }

    #[test]
    fn search_stats_add_up() {
        // created + reexpansions =
        //   duplicates + discarded + explored + frontier_remaining,
        // and distinct = created - duplicates - discarded, for a completed
        // exhaustive run.
        let mut db = two_const_db();
        let (_qs, s0) = figure3_state(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &[]);
        let model = CostModel::new(&cat, CostWeights::default());
        let out = search(s0, &model, &exhaustive_cfg(StrategyKind::Dfs));
        let distinct = out.stats.created - out.stats.duplicates - out.stats.discarded;
        assert_eq!(distinct, 9);
        assert_eq!(out.stats.frontier_remaining, 0);
        assert_eq!(
            out.stats.created + out.stats.reexpansions,
            out.stats.duplicates + out.stats.discarded + out.stats.explored
        );
        // Every distinct state was fully explored (complete run).
        assert_eq!(out.stats.explored - out.stats.reexpansions, distinct);
        assert!(!out.stats.timed_out);
    }

    #[test]
    fn time_budget_halts() {
        let mut db = two_const_db();
        let (_qs, s0) = figure3_state(&mut db);
        let cat = collect_stats(db.store(), db.dict(), &[]);
        let model = CostModel::new(&cat, CostWeights::default());
        let mut cfg = exhaustive_cfg(StrategyKind::Dfs);
        cfg.time_budget = Some(Duration::from_secs(0));
        let out = search(s0, &model, &cfg);
        assert!(out.stats.timed_out);
        // The initial state is always available as a recommendation.
        assert!(out.best_cost <= out.initial_cost);
    }

    #[test]
    fn parallel_dfs_matches_sequential_on_figure3() {
        let mut db = two_const_db();
        let cat = {
            let (qs, _) = figure3_state(&mut db);
            collect_stats(db.store(), db.dict(), &qs)
        };
        let model = CostModel::new(&cat, CostWeights::default());
        let (_, s0a) = figure3_state(&mut db);
        let seq = search(s0a, &model, &exhaustive_cfg(StrategyKind::Dfs));
        let (_, s0b) = figure3_state(&mut db);
        let mut cfg = exhaustive_cfg(StrategyKind::Dfs);
        cfg.parallelism = 4;
        let par = search(s0b, &model, &cfg);
        assert_eq!(par.best_cost, seq.best_cost);
        assert_eq!(
            par.stats.created - par.stats.duplicates - par.stats.discarded,
            9
        );
        assert_eq!(par.stats.frontier_remaining, 0);
        assert_eq!(
            par.stats.created + par.stats.reexpansions,
            par.stats.duplicates + par.stats.discarded + par.stats.explored
        );
        // Equal-cost ties break on signature, so even the best *state*
        // agrees across thread counts.
        assert_eq!(par.best_state.signature(), seq.best_state.signature());
    }
}
