//! A small Datalog-style text format for queries and views.
//!
//! ```text
//! q1(X, Z) :- t(X, <hasPainted>, <starryNight>), t(X, <isParentOf>, Y),
//!             t(Y, <hasPainted>, Z)
//! ```
//!
//! * variables are identifiers starting with an uppercase letter (or `?x`);
//! * URIs are wrapped in `<…>`, literals in `"…"`, blank-node constants as
//!   `_:label`;
//! * the head may contain constants (as produced by reformulation).
//!
//! Constants are interned into the caller's [`Dictionary`].

use rdf_model::{Dictionary, FxHashMap, Term};

use crate::query::{Atom, ConjunctiveQuery, QTerm, Var};

/// A parsed query: the query plus its variable names (indexed by `Var`).
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The parsed conjunctive query.
    pub query: ConjunctiveQuery,
    /// `var_names[v.0 as usize]` is the source name of variable `v`.
    pub var_names: Vec<String>,
    /// The predicate name before the head parenthesis (e.g. `q1`).
    pub name: String,
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the failure occurred.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    dict: &'a mut Dictionary,
    vars: FxHashMap<String, Var>,
    var_names: Vec<String>,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            self.err(format!("expected {token:?}"))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':' || c == '.'))
            .unwrap_or(rest.len());
        if end == 0 {
            return self.err("expected identifier");
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    fn variable(&mut self, name: &str) -> Var {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = Var(self.var_names.len() as u32);
        self.vars.insert(name.to_string(), v);
        self.var_names.push(name.to_string());
        v
    }

    fn term(&mut self) -> Result<QTerm, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        if rest.starts_with('<') {
            let end = match rest.find('>') {
                Some(e) => e,
                None => return self.err("unterminated '<'"),
            };
            let uri = &rest[1..end];
            self.pos += end + 1;
            return Ok(QTerm::Const(self.dict.intern(Term::uri(uri))));
        }
        if let Some(tail) = rest.strip_prefix('"') {
            let end = match tail.find('"') {
                Some(e) => e + 1,
                None => return self.err("unterminated literal"),
            };
            let lit = &rest[1..end];
            self.pos += end + 1;
            return Ok(QTerm::Const(self.dict.intern(Term::literal(lit))));
        }
        if rest.starts_with("_:") {
            self.pos += 2;
            let label = self.ident()?;
            return Ok(QTerm::Const(self.dict.intern(Term::blank(label))));
        }
        if rest.starts_with('?') {
            self.pos += 1;
            let name = self.ident()?.to_string();
            return Ok(QTerm::Var(self.variable(&name)));
        }
        let name = self.ident()?;
        if name.chars().next().is_some_and(|c| c.is_uppercase()) {
            let name = name.to_string();
            Ok(QTerm::Var(self.variable(&name)))
        } else {
            // Bare lowercase identifiers read as URIs, which keeps the
            // paper's examples terse: t(X, hasPainted, starryNight).
            Ok(QTerm::Const(self.dict.intern(Term::uri(name))))
        }
    }

    fn term_list(&mut self) -> Result<Vec<QTerm>, ParseError> {
        let mut out = Vec::new();
        self.expect_tok("(")?;
        self.skip_ws();
        if self.eat(")") {
            return Ok(out);
        }
        loop {
            out.push(self.term()?);
            if self.eat(")") {
                return Ok(out);
            }
            self.expect_tok(",")?;
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        self.skip_ws();
        if !self.eat("t") {
            return self.err("expected atom 't(…)'");
        }
        let terms = self.term_list()?;
        if terms.len() != 3 {
            return self.err(format!("atom needs 3 terms, got {}", terms.len()));
        }
        Ok(Atom([terms[0], terms[1], terms[2]]))
    }

    fn query(&mut self) -> Result<ParsedQuery, ParseError> {
        self.skip_ws();
        let name = self.ident()?.to_string();
        let head = self.term_list()?;
        self.expect_tok(":-")?;
        let mut atoms = vec![self.atom()?];
        while self.eat(",") {
            atoms.push(self.atom()?);
        }
        self.skip_ws();
        if !self.rest().is_empty() {
            return self.err("trailing input");
        }
        Ok(ParsedQuery {
            query: ConjunctiveQuery::new(head, atoms),
            var_names: std::mem::take(&mut self.var_names),
            name,
        })
    }
}

/// Parses a query, interning constants into `dict`.
pub fn parse_query(input: &str, dict: &mut Dictionary) -> Result<ParsedQuery, ParseError> {
    let mut p = Parser {
        input,
        pos: 0,
        dict,
        vars: FxHashMap::default(),
        var_names: Vec::new(),
    };
    p.query()
}

/// Parses a workload file: one query per non-empty line; `#` starts a
/// comment. Returns the queries in file order.
pub fn parse_workload(input: &str, dict: &mut Dictionary) -> Result<Vec<ParsedQuery>, ParseError> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    for line in input.lines() {
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('#') {
            out.push(parse_query(trimmed, dict).map_err(|e| ParseError {
                offset: offset + e.offset,
                message: e.message,
            })?);
        }
        offset += line.len() + 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_running_example() {
        let mut dict = Dictionary::new();
        let p = parse_query(
            "q1(X, Z) :- t(X, <hasPainted>, <starryNight>), t(X, <isParentOf>, Y), \
             t(Y, <hasPainted>, Z)",
            &mut dict,
        )
        .unwrap();
        assert_eq!(p.name, "q1");
        assert_eq!(p.query.head.len(), 2);
        assert_eq!(p.query.atoms.len(), 3);
        assert_eq!(p.var_names, vec!["X", "Z", "Y"]);
        // X appears in head and two atoms.
        assert_eq!(p.query.head[0], QTerm::Var(Var(0)));
        assert_eq!(p.query.atoms[0].0[0], QTerm::Var(Var(0)));
        assert_eq!(p.query.atoms[1].0[0], QTerm::Var(Var(0)));
        assert!(p.query.is_safe());
    }

    #[test]
    fn bare_lowercase_is_uri() {
        let mut dict = Dictionary::new();
        let p = parse_query("q(X) :- t(X, rdf:type, picture)", &mut dict).unwrap();
        assert_eq!(p.query.atoms[0].const_count(), 2);
        assert!(dict.lookup_uri("rdf:type").is_some());
        assert!(dict.lookup_uri("picture").is_some());
    }

    #[test]
    fn question_mark_variables_and_literals() {
        let mut dict = Dictionary::new();
        let p = parse_query("q(?x) :- t(?x, <p>, \"Starry Night\")", &mut dict).unwrap();
        assert_eq!(p.var_names, vec!["x"]);
        assert!(dict.lookup(&Term::literal("Starry Night")).is_some());
    }

    #[test]
    fn head_constants_allowed() {
        let mut dict = Dictionary::new();
        let p = parse_query(
            "q4(X1, <isLocatIn>) :- t(X1, <isLocatIn>, <picture>)",
            &mut dict,
        )
        .unwrap();
        assert!(matches!(p.query.head[1], QTerm::Const(_)));
    }

    #[test]
    fn boolean_query() {
        let mut dict = Dictionary::new();
        let p = parse_query("q() :- t(X, <p>, Y)", &mut dict).unwrap();
        assert!(p.query.head.is_empty());
    }

    #[test]
    fn blank_node_constants() {
        let mut dict = Dictionary::new();
        let p = parse_query("q(X) :- t(X, <p>, _:b1)", &mut dict).unwrap();
        assert_eq!(
            p.query.atoms[0].0[2],
            QTerm::Const(dict.lookup(&Term::blank("b1")).unwrap())
        );
    }

    #[test]
    fn workload_files_parse_linewise() {
        let mut dict = Dictionary::new();
        let text = "# painter workload\n\
                    q1(X) :- t(X, <hasPainted>, Y)\n\
                    \n\
                    q2(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)\n";
        let ws = parse_workload(text, &mut dict).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].name, "q1");
        assert_eq!(ws[1].query.atoms.len(), 2);
    }

    #[test]
    fn workload_errors_carry_file_offsets() {
        let mut dict = Dictionary::new();
        let text = "q1(X) :- t(X, <p>, Y)\nbroken :-\n";
        let err = parse_workload(text, &mut dict).unwrap_err();
        assert!(err.offset > 20, "offset should point into line 2: {err:?}");
    }

    #[test]
    fn errors_have_positions() {
        let mut dict = Dictionary::new();
        assert!(parse_query("q(X) :- t(X, <p>)", &mut dict).is_err());
        assert!(parse_query("q(X) : t(X, <p>, Y)", &mut dict).is_err());
        assert!(parse_query("q(X) :- t(X, <p>, Y) garbage", &mut dict).is_err());
        assert!(parse_query("", &mut dict).is_err());
    }
}
