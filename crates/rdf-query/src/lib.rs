//! # rdf-query
//!
//! Conjunctive queries (and unions thereof) over the single RDF triple table
//! `t(s, p, o)` — the query and view language of *View Selection in Semantic
//! Web Databases* (Definition 2.1).
//!
//! Provided machinery:
//!
//! * [`ConjunctiveQuery`] / [`Atom`] / [`QTerm`]: queries whose heads may
//!   contain constants (reformulation rules 5–6 bind head variables to
//!   schema constants, see Table 2 of the paper);
//! * [`graph::JoinGraph`]: the paper's *state graph* per view — join edges
//!   and selection edges (Definition 3.1), connectivity, connected-subset
//!   enumeration (for View Break);
//! * [`containment`]: containment mappings (Chandra–Merlin), equivalence;
//! * [`minimize`]: core computation (queries and views are assumed minimal,
//!   Definition 2.1);
//! * [`canonical`]: canonical forms up to variable renaming — the engine
//!   behind state deduplication and View Fusion's isomorphism test;
//! * [`parser`]: a small Datalog-style text format used by tests, examples
//!   and the workload tooling.
//!
//! ```
//! use rdf_model::Dictionary;
//! use rdf_query::parser::parse_query;
//!
//! let mut dict = Dictionary::new();
//! // The paper's running example q1: painters of "Starry Night" with a
//! // painter child.
//! let q1 = parse_query(
//!     "q1(X, Z) :- t(X, <hasPainted>, <starryNight>), \
//!                  t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
//!     &mut dict,
//! )
//! .unwrap();
//! assert_eq!(q1.query.atoms.len(), 3);
//! assert_eq!(q1.query.head.len(), 2);
//! ```

pub mod canonical;
pub mod containment;
pub mod display;
pub mod graph;
pub mod minimize;
pub mod parser;
pub mod query;
pub mod ucq;

pub use canonical::{body_isomorphism, canonical_form, CanonicalForm};
pub use containment::{equivalent, is_contained_in};
pub use minimize::minimize;
pub use query::{Atom, ConjunctiveQuery, QTerm, Var};
pub use ucq::UnionQuery;
