//! Query minimization (core computation).
//!
//! Definition 2.1 assumes queries and views are *minimal*: "the only
//! containment mapping from a query to itself is the identity". A
//! conjunctive query's core is obtained by repeatedly dropping any atom
//! whose removal leaves an equivalent query; equivalence is witnessed by a
//! head-preserving homomorphism from the full query into the reduced one.

use crate::containment::containment_mapping;
use crate::query::ConjunctiveQuery;

/// Returns the minimized (core) query, equivalent to the input.
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.clone();
    loop {
        let mut shrunk = false;
        for i in 0..current.atoms.len() {
            if current.atoms.len() == 1 {
                break;
            }
            let mut candidate = current.clone();
            candidate.atoms.remove(i);
            // The candidate must keep head variables safe.
            if !candidate.is_safe() {
                continue;
            }
            // current ⊒ candidate always (candidate has fewer atoms);
            // equivalence needs a mapping from current into candidate.
            if containment_mapping(&current, &candidate).is_some() {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Whether `q` is already minimal.
pub fn is_minimal(q: &ConjunctiveQuery) -> bool {
    minimize(q).atoms.len() == q.atoms.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use crate::query::{Atom, QTerm, Var};
    use rdf_model::Id;

    fn v(i: u32) -> QTerm {
        QTerm::Var(Var(i))
    }

    #[test]
    fn redundant_atom_removed() {
        // q(X) :- t(X,p,Y), t(X,p,Z) minimizes to a single atom.
        let q = ConjunctiveQuery::new(
            vec![v(0)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(0), Id(1), Var(2)),
            ],
        );
        let m = minimize(&q);
        assert_eq!(m.atoms.len(), 1);
        assert!(equivalent(&q, &m));
        assert!(!is_minimal(&q));
        assert!(is_minimal(&m));
    }

    #[test]
    fn chain_is_minimal() {
        let q = ConjunctiveQuery::new(
            vec![v(0)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(1), Id(1), Var(2)),
            ],
        );
        assert!(is_minimal(&q));
        assert_eq!(minimize(&q), q);
    }

    #[test]
    fn existential_folds_onto_head_atom() {
        // q(X,Z) :- t(X,p,Y), t(X,p,Z) IS reducible: mapping Y→Z folds the
        // first atom onto the second while fixing the head.
        let q = ConjunctiveQuery::new(
            vec![v(0), v(2)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(0), Id(1), Var(2)),
            ],
        );
        let m = minimize(&q);
        assert_eq!(m.atoms, vec![Atom::new(Var(0), Id(1), Var(2))]);
    }

    #[test]
    fn symmetric_cycle_is_minimal() {
        // q(X) :- t(X,p,Y), t(Y,p,X): folding would have to swap X and Y,
        // but X is a head variable, so the query is minimal.
        let q = ConjunctiveQuery::new(
            vec![v(0)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(1), Id(1), Var(0)),
            ],
        );
        assert!(is_minimal(&q));
    }

    #[test]
    fn distinct_properties_are_minimal() {
        let q = ConjunctiveQuery::new(
            vec![v(0), v(2)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(0), Id(2), Var(2)),
            ],
        );
        assert!(is_minimal(&q));
    }

    #[test]
    fn constant_specialization_not_removed() {
        // q(X) :- t(X,p,Y), t(X,p,c): the constant atom is strictly more
        // selective; the variable atom folds onto it.
        let q = ConjunctiveQuery::new(
            vec![v(0)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(0), Id(1), Id(9)),
            ],
        );
        let m = minimize(&q);
        assert_eq!(m.atoms.len(), 1);
        assert_eq!(m.atoms[0], Atom::new(Var(0), Id(1), Id(9)));
    }

    #[test]
    fn multi_step_minimization() {
        // Three copies of the same pattern with fresh existentials collapse
        // to one.
        let q = ConjunctiveQuery::new(
            vec![v(0)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(0), Id(1), Var(2)),
                Atom::new(Var(0), Id(1), Var(3)),
            ],
        );
        assert_eq!(minimize(&q).atoms.len(), 1);
    }

    #[test]
    fn boolean_query_minimization() {
        // Boolean (empty-head) query: q() :- t(X,p,Y), t(Z,p,W) — the two
        // atoms fold together.
        let q = ConjunctiveQuery::new(
            vec![],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(2), Id(1), Var(3)),
            ],
        );
        assert_eq!(minimize(&q).atoms.len(), 1);
    }
}
