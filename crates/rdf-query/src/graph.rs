//! The paper's *state graph*, per view (Definition 3.1): one node per body
//! atom, a **join edge** per pair of occurrences of a variable in two
//! distinct atoms, and a **selection edge** (self-loop) per constant.
//!
//! Views must not contain Cartesian products, so the graph of every view is
//! connected; this module supplies the connectivity tests and the
//! connected-subset enumeration that View Break needs.

use rdf_model::{FxHashMap, FxHashSet, Id};

use crate::query::{Atom, QTerm, Var};

/// A variable occurrence: atom index and column (0 = s, 1 = p, 2 = o).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Occurrence {
    /// Index of the atom within the body.
    pub atom: usize,
    /// Column position within the atom.
    pub pos: usize,
}

/// A join edge: two occurrences of the same variable in distinct atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    /// The shared variable.
    pub var: Var,
    /// Occurrence in the lower-indexed atom.
    pub a: Occurrence,
    /// Occurrence in the higher-indexed atom.
    pub b: Occurrence,
}

/// A selection edge: a constant in some atom position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SelectionEdge {
    /// The atom holding the constant.
    pub atom: usize,
    /// Column position of the constant.
    pub pos: usize,
    /// The constant id.
    pub constant: Id,
}

/// The join/selection multigraph of a conjunctive body.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    n: usize,
    join_edges: Vec<JoinEdge>,
    selection_edges: Vec<SelectionEdge>,
    adj: Vec<Vec<usize>>,
}

impl JoinGraph {
    /// Builds the graph of a body.
    pub fn new(atoms: &[Atom]) -> Self {
        let n = atoms.len();
        let mut occurrences: FxHashMap<Var, Vec<Occurrence>> = FxHashMap::default();
        let mut selection_edges = Vec::new();
        for (ai, atom) in atoms.iter().enumerate() {
            for (pos, term) in atom.terms().iter().enumerate() {
                match term {
                    QTerm::Var(v) => occurrences
                        .entry(*v)
                        .or_default()
                        .push(Occurrence { atom: ai, pos }),
                    QTerm::Const(c) => selection_edges.push(SelectionEdge {
                        atom: ai,
                        pos,
                        constant: *c,
                    }),
                }
            }
        }
        let mut join_edges = Vec::new();
        let mut adj = vec![Vec::new(); n];
        let mut vars: Vec<_> = occurrences.into_iter().collect();
        vars.sort_unstable_by_key(|(v, _)| *v);
        for (var, occs) in vars {
            for i in 0..occs.len() {
                for j in i + 1..occs.len() {
                    if occs[i].atom != occs[j].atom {
                        join_edges.push(JoinEdge {
                            var,
                            a: occs[i],
                            b: occs[j],
                        });
                        adj[occs[i].atom].push(occs[j].atom);
                        adj[occs[j].atom].push(occs[i].atom);
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Self {
            n,
            join_edges,
            selection_edges,
            adj,
        }
    }

    /// Number of nodes (atoms).
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// All join edges.
    pub fn join_edges(&self) -> &[JoinEdge] {
        &self.join_edges
    }

    /// All selection edges.
    pub fn selection_edges(&self) -> &[SelectionEdge] {
        &self.selection_edges
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// Whether the whole graph is connected (trivially true for ≤ 1 node).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        self.component_of(0).len() == self.n
    }

    fn component_of(&self, start: usize) -> Vec<usize> {
        let mut seen = vec![false; self.n];
        seen[start] = true;
        let mut stack = vec![start];
        let mut out = vec![start];
        while let Some(x) = stack.pop() {
            for &nb in &self.adj[x] {
                if !seen[nb] {
                    seen[nb] = true;
                    out.push(nb);
                    stack.push(nb);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The connected components, each sorted, ordered by smallest member.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let comp = self.component_of(start);
            for &x in &comp {
                seen[x] = true;
            }
            comps.push(comp);
        }
        comps
    }

    /// Whether the given node subset induces a connected subgraph.
    pub fn is_connected_subset(&self, nodes: &[usize]) -> bool {
        if nodes.is_empty() {
            return false;
        }
        if nodes.len() == 1 {
            return true;
        }
        let in_set: FxHashSet<usize> = nodes.iter().copied().collect();
        let mut seen = FxHashSet::default();
        seen.insert(nodes[0]);
        let mut stack = vec![nodes[0]];
        while let Some(x) = stack.pop() {
            for &nb in &self.adj[x] {
                if in_set.contains(&nb) && seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        seen.len() == nodes.len()
    }

    /// Enumerates **all** connected node subsets (non-empty), each sorted.
    ///
    /// Uses the classic fixed-smallest-element growth: subsets containing
    /// `v` as their minimum are grown only through neighbors `> v`, so each
    /// subset is produced exactly once. Worst case exponential (it must be:
    /// a clique has `2^n - 1` connected subsets) — view bodies are small.
    pub fn connected_subsets(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for v in 0..self.n {
            let mut current = vec![v];
            let candidates: Vec<usize> = self.adj[v].iter().copied().filter(|&u| u > v).collect();
            self.grow(
                v,
                &mut current,
                candidates,
                &mut FxHashSet::default(),
                &mut out,
            );
        }
        out
    }

    fn grow(
        &self,
        min: usize,
        current: &mut Vec<usize>,
        mut candidates: Vec<usize>,
        forbidden: &mut FxHashSet<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        let mut sorted = current.clone();
        sorted.sort_unstable();
        out.push(sorted);
        // Nodes forbidden at this level; restored before returning so that
        // the caller's sibling branches see its own forbidden set.
        let mut added_here = Vec::new();
        while let Some(u) = candidates.pop() {
            if forbidden.contains(&u) || current.contains(&u) {
                continue;
            }
            // Branch 1: include u, extending candidates with its frontier.
            current.push(u);
            let mut next: Vec<usize> = candidates.clone();
            for &nb in &self.adj[u] {
                if nb > min && !current.contains(&nb) && !forbidden.contains(&nb) {
                    next.push(nb);
                }
            }
            self.grow(min, current, next, forbidden, out);
            current.pop();
            // Branch 2: exclude u from every later subset of this subtree,
            // which is what makes each subset appear exactly once.
            forbidden.insert(u);
            added_here.push(u);
        }
        for u in added_here {
            forbidden.remove(&u);
        }
    }

    /// Connected subsets of the induced subgraph on `nodes`.
    pub fn connected_subsets_within(&self, nodes: &[usize]) -> Vec<Vec<usize>> {
        let in_set: FxHashSet<usize> = nodes.iter().copied().collect();
        self.connected_subsets()
            .into_iter()
            .filter(|s| s.iter().all(|x| in_set.contains(x)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Id;

    fn chain(n: usize) -> Vec<Atom> {
        // t(X0, p, X1), t(X1, p, X2), ...
        (0..n)
            .map(|i| Atom::new(Var(i as u32), Id(0), Var(i as u32 + 1)))
            .collect()
    }

    fn star(n: usize) -> Vec<Atom> {
        // t(X0, pi, Yi) — all atoms share the subject.
        (0..n)
            .map(|i| Atom::new(Var(0), Id(i as u32), Var(i as u32 + 1)))
            .collect()
    }

    #[test]
    fn edges_of_running_example() {
        // q1: t(X, hasPainted, starryNight), t(X, isParentOf, Y),
        //     t(Y, hasPainted, Z) — Figure 1's S0.
        let atoms = vec![
            Atom::new(Var(0), Id(10), Id(20)),
            Atom::new(Var(0), Id(11), Var(1)),
            Atom::new(Var(1), Id(10), Var(2)),
        ];
        let g = JoinGraph::new(&atoms);
        assert_eq!(g.node_count(), 3);
        // X joins atoms 0–1 (s=s); Y joins atoms 1–2 (o=s).
        assert_eq!(g.join_edges().len(), 2);
        // Constants: hasPainted, starryNight, isParentOf, hasPainted.
        assert_eq!(g.selection_edges().len(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn multi_edges_between_atom_pairs() {
        // t(X, p, Y), t(X, q, Y): two join edges between the same node pair.
        let atoms = vec![
            Atom::new(Var(0), Id(1), Var(1)),
            Atom::new(Var(0), Id(2), Var(1)),
        ];
        let g = JoinGraph::new(&atoms);
        assert_eq!(g.join_edges().len(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn intra_atom_repetition_is_not_an_edge() {
        let atoms = vec![Atom::new(Var(0), Id(1), Var(0))];
        let g = JoinGraph::new(&atoms);
        assert!(g.join_edges().is_empty());
    }

    #[test]
    fn disconnected_components() {
        let atoms = vec![
            Atom::new(Var(0), Id(1), Var(1)),
            Atom::new(Var(2), Id(1), Var(3)),
        ];
        let g = JoinGraph::new(&atoms);
        assert!(!g.is_connected());
        assert_eq!(g.components(), vec![vec![0], vec![1]]);
    }

    #[test]
    fn connected_subset_checks() {
        let g = JoinGraph::new(&chain(3)); // path of 4 atoms? no: 3 atoms 0-1-2
        assert!(g.is_connected_subset(&[0, 1]));
        assert!(g.is_connected_subset(&[0, 1, 2]));
        assert!(!g.is_connected_subset(&[0, 2]));
        assert!(g.is_connected_subset(&[2]));
        assert!(!g.is_connected_subset(&[]));
    }

    #[test]
    fn connected_subsets_of_path() {
        // Path on 3 nodes: subsets {0},{1},{2},{01},{12},{012} = 6.
        let g = JoinGraph::new(&chain(3));
        let mut subs = g.connected_subsets();
        subs.sort();
        assert_eq!(subs.len(), 6);
        assert!(subs.contains(&vec![0, 1, 2]));
        assert!(!subs.contains(&vec![0, 2]));
    }

    #[test]
    fn connected_subsets_of_star_is_powerset_minus_disconnected() {
        // Star with center node... every atom shares X0, so the atom graph
        // is a clique: all 2^n - 1 subsets are connected.
        let g = JoinGraph::new(&star(4));
        assert_eq!(g.connected_subsets().len(), 15);
    }

    #[test]
    fn connected_subsets_unique() {
        let g = JoinGraph::new(&chain(5));
        let subs = g.connected_subsets();
        let set: FxHashSet<Vec<usize>> = subs.iter().cloned().collect();
        assert_eq!(set.len(), subs.len(), "no duplicates");
        // Path on n nodes has n(n+1)/2 connected subsets.
        assert_eq!(subs.len(), 5 * 6 / 2);
    }
}
