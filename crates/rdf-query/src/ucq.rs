//! Unions of conjunctive queries.
//!
//! `Reformulate(q, S)` outputs a UCQ (Algorithm 1); pre-reformulation makes
//! the initial state's rewritings UCQs too (Section 4.3). Branches are
//! deduplicated by canonical form, so a `UnionQuery` is a set of
//! pairwise-non-identical (up to renaming) CQs.

use rdf_model::FxHashSet;

use crate::canonical::{canonical_form, CTok, HeadMode};
use crate::query::ConjunctiveQuery;

/// A union of conjunctive queries with renaming-invariant deduplication.
#[derive(Debug, Clone, Default)]
pub struct UnionQuery {
    branches: Vec<ConjunctiveQuery>,
    keys: FxHashSet<Vec<CTok>>,
}

impl UnionQuery {
    /// An empty union (the unsatisfiable query).
    pub fn new() -> Self {
        Self::default()
    }

    /// A union with a single branch.
    pub fn singleton(q: ConjunctiveQuery) -> Self {
        let mut u = Self::new();
        u.push(q);
        u
    }

    /// Adds a branch unless an isomorphic one is present; returns whether it
    /// was added.
    pub fn push(&mut self, q: ConjunctiveQuery) -> bool {
        let key = canonical_form(&q, HeadMode::Ordered).key;
        if self.keys.insert(key) {
            self.branches.push(q);
            true
        } else {
            false
        }
    }

    /// Whether an isomorphic branch is already present.
    pub fn contains(&self, q: &ConjunctiveQuery) -> bool {
        self.keys
            .contains(&canonical_form(q, HeadMode::Ordered).key)
    }

    /// The branches in insertion order.
    pub fn branches(&self) -> &[ConjunctiveQuery] {
        &self.branches
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Whether the union has no branches.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// Total number of atoms across branches (`#a` in the paper's Table 3).
    pub fn atom_count(&self) -> usize {
        self.branches.iter().map(|b| b.atoms.len()).sum()
    }

    /// Total number of body constants across branches (`#c` in Table 3).
    pub fn const_count(&self) -> usize {
        self.branches.iter().map(|b| b.const_count()).sum()
    }

    /// Iterates branches.
    pub fn iter(&self) -> std::slice::Iter<'_, ConjunctiveQuery> {
        self.branches.iter()
    }
}

impl IntoIterator for UnionQuery {
    type Item = ConjunctiveQuery;
    type IntoIter = std::vec::IntoIter<ConjunctiveQuery>;
    fn into_iter(self) -> Self::IntoIter {
        self.branches.into_iter()
    }
}

impl<'a> IntoIterator for &'a UnionQuery {
    type Item = &'a ConjunctiveQuery;
    type IntoIter = std::slice::Iter<'a, ConjunctiveQuery>;
    fn into_iter(self) -> Self::IntoIter {
        self.branches.iter()
    }
}

impl FromIterator<ConjunctiveQuery> for UnionQuery {
    fn from_iter<I: IntoIterator<Item = ConjunctiveQuery>>(iter: I) -> Self {
        let mut u = UnionQuery::new();
        for q in iter {
            u.push(q);
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Atom, QTerm, Var};
    use rdf_model::Id;

    fn q(p: u32) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec![QTerm::Var(Var(0))],
            vec![Atom::new(Var(0), Id(p), Var(1))],
        )
    }

    #[test]
    fn dedup_by_isomorphism() {
        let mut u = UnionQuery::new();
        assert!(u.push(q(1)));
        // Same query with renamed variables.
        let renamed = ConjunctiveQuery::new(
            vec![QTerm::Var(Var(5))],
            vec![Atom::new(Var(5), Id(1), Var(9))],
        );
        assert!(!u.push(renamed));
        assert!(u.push(q(2)));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn counting_helpers() {
        let u: UnionQuery = vec![q(1), q(2)].into_iter().collect();
        assert_eq!(u.atom_count(), 2);
        assert_eq!(u.const_count(), 2);
        assert!(!u.is_empty());
        assert!(u.contains(&q(1)));
        assert!(!u.contains(&q(3)));
    }
}
