//! Conjunctive queries over the triple table.

use rdf_model::{FxHashMap, FxHashSet, Id};

/// A query variable, identified by a query-local index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// A term of a query atom or head: a variable or a constant.
///
/// Heads may contain constants: reformulation rules 5 and 6 substitute
/// schema constants for head variables (`q4(X1, isLocatIn) :- …` in the
/// paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QTerm {
    /// A variable.
    Var(Var),
    /// A dictionary-encoded constant.
    Const(Id),
}

impl QTerm {
    /// The variable inside, if any.
    #[inline]
    pub fn as_var(self) -> Option<Var> {
        match self {
            QTerm::Var(v) => Some(v),
            QTerm::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    #[inline]
    pub fn as_const(self) -> Option<Id> {
        match self {
            QTerm::Var(_) => None,
            QTerm::Const(c) => Some(c),
        }
    }

    /// Whether this term is a variable.
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, QTerm::Var(_))
    }
}

impl From<Var> for QTerm {
    fn from(v: Var) -> Self {
        QTerm::Var(v)
    }
}

impl From<Id> for QTerm {
    fn from(c: Id) -> Self {
        QTerm::Const(c)
    }
}

/// One atom `t(s, p, o)` of a conjunctive query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom(pub [QTerm; 3]);

impl Atom {
    /// Builds an atom from three terms.
    pub fn new(s: impl Into<QTerm>, p: impl Into<QTerm>, o: impl Into<QTerm>) -> Self {
        Atom([s.into(), p.into(), o.into()])
    }

    /// The three terms.
    #[inline]
    pub fn terms(&self) -> &[QTerm; 3] {
        &self.0
    }

    /// Iterates the variables of this atom (with duplicates).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.0.iter().filter_map(|t| t.as_var())
    }

    /// Number of constants in the atom.
    pub fn const_count(&self) -> usize {
        self.0.iter().filter(|t| !t.is_var()).count()
    }

    /// Applies a variable substitution (vars absent from the map are kept).
    pub fn substitute(&self, map: &FxHashMap<Var, QTerm>) -> Atom {
        Atom(self.0.map(|t| match t {
            QTerm::Var(v) => map.get(&v).copied().unwrap_or(t),
            c => c,
        }))
    }
}

/// A conjunctive query (or view) over the triple table `t(s, p, o)`:
/// `q(head) :- atom₁, …, atomₙ` (Definition 2.1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// The distinguished (answer) terms, in order.
    pub head: Vec<QTerm>,
    /// The body atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Builds a query from head terms and atoms.
    pub fn new(head: Vec<QTerm>, atoms: Vec<Atom>) -> Self {
        Self { head, atoms }
    }

    /// `len(q)` in the paper: the number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the body is empty (degenerate).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// All distinct body variables, in first-occurrence order.
    pub fn body_vars(&self) -> Vec<Var> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for atom in &self.atoms {
            for v in atom.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// All distinct head variables, in head order.
    pub fn head_vars(&self) -> Vec<Var> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for t in &self.head {
            if let QTerm::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Distinct variables appearing in the body but not the head
    /// (existential variables).
    pub fn existential_vars(&self) -> Vec<Var> {
        let head: FxHashSet<Var> = self.head_vars().into_iter().collect();
        self.body_vars()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// Largest variable index used (head or body), if any.
    pub fn max_var(&self) -> Option<u32> {
        let body = self.atoms.iter().flat_map(|a| a.vars()).map(|v| v.0);
        let head = self.head.iter().filter_map(|t| t.as_var()).map(|v| v.0);
        body.chain(head).max()
    }

    /// A variable index strictly larger than any in use.
    pub fn fresh_var(&self) -> Var {
        Var(self.max_var().map_or(0, |m| m + 1))
    }

    /// Total number of constants in body atoms — `#c(Q)` of the paper's
    /// Table 3 counts these across a workload.
    pub fn const_count(&self) -> usize {
        self.atoms.iter().map(|a| a.const_count()).sum()
    }

    /// Whether every head variable occurs in the body (safety).
    pub fn is_safe(&self) -> bool {
        let body: FxHashSet<Var> = self.atoms.iter().flat_map(|a| a.vars()).collect();
        self.head_vars().iter().all(|v| body.contains(v))
    }

    /// Applies a variable substitution to body and head.
    pub fn substitute(&self, map: &FxHashMap<Var, QTerm>) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self
                .head
                .iter()
                .map(|t| match t {
                    QTerm::Var(v) => map.get(v).copied().unwrap_or(*t),
                    c => *c,
                })
                .collect(),
            atoms: self.atoms.iter().map(|a| a.substitute(map)).collect(),
        }
    }

    /// Renumbers variables densely starting from 0 (first-occurrence order
    /// over head then body). Useful before comparing or storing queries.
    pub fn normalized(&self) -> ConjunctiveQuery {
        let mut map: FxHashMap<Var, QTerm> = FxHashMap::default();
        let mut next = 0u32;
        let mut touch = |v: Var, map: &mut FxHashMap<Var, QTerm>| {
            map.entry(v).or_insert_with(|| {
                let t = QTerm::Var(Var(next));
                next += 1;
                t
            });
        };
        for t in &self.head {
            if let QTerm::Var(v) = t {
                touch(*v, &mut map);
            }
        }
        for a in &self.atoms {
            for v in a.vars() {
                touch(v, &mut map);
            }
        }
        self.substitute(&map)
    }

    /// Replaces the atom at `idx` with `atom`, returning a new query.
    pub fn with_atom_replaced(&self, idx: usize, atom: Atom) -> ConjunctiveQuery {
        let mut atoms = self.atoms.clone();
        atoms[idx] = atom;
        ConjunctiveQuery {
            head: self.head.clone(),
            atoms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> QTerm {
        QTerm::Var(Var(i))
    }
    fn c(i: u32) -> QTerm {
        QTerm::Const(Id(i))
    }

    #[test]
    fn var_collections() {
        // q(X0, 5) :- t(X0, c1, X1), t(X1, c2, X2)
        let q = ConjunctiveQuery::new(
            vec![v(0), c(5)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(1), Id(2), Var(2)),
            ],
        );
        assert_eq!(q.body_vars(), vec![Var(0), Var(1), Var(2)]);
        assert_eq!(q.head_vars(), vec![Var(0)]);
        assert_eq!(q.existential_vars(), vec![Var(1), Var(2)]);
        assert_eq!(q.max_var(), Some(2));
        assert_eq!(q.fresh_var(), Var(3));
        assert_eq!(q.const_count(), 2);
        assert!(q.is_safe());
    }

    #[test]
    fn unsafe_head_detected() {
        let q = ConjunctiveQuery::new(vec![v(9)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        assert!(!q.is_safe());
    }

    #[test]
    fn substitution() {
        let q = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        let mut map = FxHashMap::default();
        map.insert(Var(1), c(7));
        let q2 = q.substitute(&map);
        assert_eq!(q2.atoms[0].0[2], c(7));
        assert_eq!(q2.head, vec![v(0)]);
    }

    #[test]
    fn normalization_is_dense_and_stable() {
        let q = ConjunctiveQuery::new(
            vec![v(17)],
            vec![
                Atom::new(Var(17), Id(1), Var(40)),
                Atom::new(Var(40), Id(2), Var(3)),
            ],
        );
        let n = q.normalized();
        assert_eq!(n.head, vec![v(0)]);
        assert_eq!(n.atoms[0], Atom::new(Var(0), Id(1), Var(1)));
        assert_eq!(n.atoms[1], Atom::new(Var(1), Id(2), Var(2)));
        assert_eq!(n.normalized(), n);
    }

    #[test]
    fn atom_helpers() {
        let a = Atom::new(Var(0), Id(3), Var(0));
        assert_eq!(a.vars().count(), 2);
        assert_eq!(a.const_count(), 1);
    }
}
