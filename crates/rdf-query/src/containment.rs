//! Containment mappings and query equivalence (Chandra–Merlin [7]).
//!
//! `q2 ⊆ q1` (every answer of `q2` is an answer of `q1`) iff there is a
//! *containment mapping* from `q1` to `q2`: a substitution of `q1`'s
//! variables by `q2`'s terms sending every atom of `q1` to an atom of `q2`
//! and the head of `q1` to the head of `q2`. The problem is NP-complete but
//! the queries here are small (≤ ~10 atoms), so plain backtracking with a
//! most-constrained-first atom order is enough.

use rdf_model::FxHashMap;

use crate::query::{Atom, ConjunctiveQuery, QTerm, Var};

/// Searches for a homomorphism from `from`'s body into `to`'s body that
/// maps `from.head` pointwise onto `to.head`. Returns the variable mapping
/// if one exists.
pub fn containment_mapping(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
) -> Option<FxHashMap<Var, QTerm>> {
    if from.head.len() != to.head.len() {
        return None;
    }
    let mut map: FxHashMap<Var, QTerm> = FxHashMap::default();
    // Seed the mapping with the head constraints.
    for (f, t) in from.head.iter().zip(to.head.iter()) {
        match (f, t) {
            (QTerm::Const(a), QTerm::Const(b)) => {
                if a != b {
                    return None;
                }
            }
            (QTerm::Var(v), t) => {
                if let Some(prev) = map.get(v) {
                    if prev != t {
                        return None;
                    }
                } else {
                    map.insert(*v, *t);
                }
            }
            // A constant in `from`'s head cannot map to a variable.
            (QTerm::Const(_), QTerm::Var(_)) => return None,
        }
    }
    // Order atoms most-constrained-first: more constants and already-mapped
    // variables first.
    let mut order: Vec<usize> = (0..from.atoms.len()).collect();
    order.sort_by_key(|&i| {
        let a = &from.atoms[i];
        let bound = a
            .terms()
            .iter()
            .filter(|t| match t {
                QTerm::Const(_) => true,
                QTerm::Var(v) => map.contains_key(v),
            })
            .count();
        std::cmp::Reverse(bound)
    });
    if backtrack(from, to, &order, 0, &mut map) {
        Some(map)
    } else {
        None
    }
}

fn backtrack(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    order: &[usize],
    depth: usize,
    map: &mut FxHashMap<Var, QTerm>,
) -> bool {
    let Some(&atom_idx) = order.get(depth) else {
        return true;
    };
    let atom = &from.atoms[atom_idx];
    for target in &to.atoms {
        let mut trail: Vec<Var> = Vec::new();
        if try_extend(atom, target, map, &mut trail) && backtrack(from, to, order, depth + 1, map) {
            return true;
        }
        for v in trail {
            map.remove(&v);
        }
    }
    false
}

/// Attempts to extend `map` so that `atom` maps onto `target`; records newly
/// bound variables in `trail` for rollback.
fn try_extend(
    atom: &Atom,
    target: &Atom,
    map: &mut FxHashMap<Var, QTerm>,
    trail: &mut Vec<Var>,
) -> bool {
    for (f, t) in atom.terms().iter().zip(target.terms().iter()) {
        match f {
            QTerm::Const(c) => {
                if QTerm::Const(*c) != *t {
                    return false;
                }
            }
            QTerm::Var(v) => match map.get(v) {
                Some(prev) => {
                    if prev != t {
                        return false;
                    }
                }
                None => {
                    map.insert(*v, *t);
                    trail.push(*v);
                }
            },
        }
    }
    true
}

/// `sub ⊑ sup`: every answer of `sub` is an answer of `sup`, i.e. there is a
/// containment mapping from `sup` to `sub`.
pub fn is_contained_in(sub: &ConjunctiveQuery, sup: &ConjunctiveQuery) -> bool {
    containment_mapping(sup, sub).is_some()
}

/// Semantic equivalence: containment in both directions.
pub fn equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    is_contained_in(a, b) && is_contained_in(b, a)
}

/// `q ⊑ ∪ᵢ bᵢ`: a conjunctive query is contained in a union iff it is
/// contained in one disjunct (Sagiv–Yannakakis; CQs have no unions in
/// their bodies, so no cross-disjunct reasoning is needed).
pub fn cq_contained_in_union(q: &ConjunctiveQuery, union: &crate::ucq::UnionQuery) -> bool {
    union.branches().iter().any(|b| is_contained_in(q, b))
}

/// `∪ᵢ aᵢ ⊑ ∪ⱼ bⱼ`: every branch of the left union is contained in some
/// branch of the right one.
pub fn union_contained_in(a: &crate::ucq::UnionQuery, b: &crate::ucq::UnionQuery) -> bool {
    a.branches().iter().all(|qa| cq_contained_in_union(qa, b))
}

/// Equivalence of unions of conjunctive queries.
pub fn union_equivalent(a: &crate::ucq::UnionQuery, b: &crate::ucq::UnionQuery) -> bool {
    union_contained_in(a, b) && union_contained_in(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Id;

    fn v(i: u32) -> QTerm {
        QTerm::Var(Var(i))
    }

    #[test]
    fn identity_mapping() {
        let q = ConjunctiveQuery::new(
            vec![v(0)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(1), Id(2), Id(9)),
            ],
        );
        assert!(equivalent(&q, &q));
    }

    #[test]
    fn renamed_queries_equivalent() {
        let q1 = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        let q2 = ConjunctiveQuery::new(vec![v(5)], vec![Atom::new(Var(5), Id(1), Var(8))]);
        assert!(equivalent(&q1, &q2));
    }

    #[test]
    fn specialization_is_contained() {
        // q_spec(X) :- t(X, p, c)   ⊑   q_gen(X) :- t(X, p, Y)
        let q_gen = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        let q_spec = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Id(7))]);
        assert!(is_contained_in(&q_spec, &q_gen));
        assert!(!is_contained_in(&q_gen, &q_spec));
        assert!(!equivalent(&q_gen, &q_spec));
    }

    #[test]
    fn longer_chain_contained_in_shorter() {
        // chain2(X) :- t(X,p,Y), t(Y,p,Z)  ⊑  chain1(X) :- t(X,p,Y)
        let chain1 = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        let chain2 = ConjunctiveQuery::new(
            vec![v(0)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(1), Id(1), Var(2)),
            ],
        );
        assert!(is_contained_in(&chain2, &chain1));
        assert!(!is_contained_in(&chain1, &chain2));
    }

    #[test]
    fn head_constants_must_match() {
        let a = ConjunctiveQuery::new(
            vec![QTerm::Const(Id(1))],
            vec![Atom::new(Var(0), Id(1), Var(1))],
        );
        let b = ConjunctiveQuery::new(
            vec![QTerm::Const(Id(2))],
            vec![Atom::new(Var(0), Id(1), Var(1))],
        );
        assert!(!is_contained_in(&a, &b));
        assert!(equivalent(&a, &a));
    }

    #[test]
    fn head_variable_repetition_matters() {
        // q(X,X) vs q(X,Y): the first is contained in the second, not
        // conversely.
        let qxx = ConjunctiveQuery::new(vec![v(0), v(0)], vec![Atom::new(Var(0), Id(1), Var(0))]);
        let qxy = ConjunctiveQuery::new(vec![v(0), v(1)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        assert!(is_contained_in(&qxx, &qxy));
        assert!(!is_contained_in(&qxy, &qxx));
    }

    #[test]
    fn different_arity_never_contained() {
        let q1 = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        let q2 = ConjunctiveQuery::new(vec![v(0), v(1)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        assert!(!is_contained_in(&q1, &q2));
    }

    #[test]
    fn union_containment_branchwise() {
        use crate::ucq::UnionQuery;
        let qa = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Id(7))]);
        let qb = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(2), Id(8))]);
        let q_gen = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        let mut u_small = UnionQuery::new();
        u_small.push(qa.clone());
        let mut u_big = UnionQuery::new();
        u_big.push(q_gen.clone());
        u_big.push(qb.clone());
        // qa ⊑ q_gen, hence u_small ⊑ u_big; not conversely (qb matches
        // nothing in u_small).
        assert!(cq_contained_in_union(&qa, &u_big));
        assert!(union_contained_in(&u_small, &u_big));
        assert!(!union_contained_in(&u_big, &u_small));
        assert!(!union_equivalent(&u_small, &u_big));
        assert!(union_equivalent(&u_big, &u_big));
    }

    #[test]
    fn union_equivalence_modulo_redundant_branch() {
        use crate::ucq::UnionQuery;
        let q_gen = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        let q_spec = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Id(9))]);
        let mut with_redundant = UnionQuery::new();
        with_redundant.push(q_gen.clone());
        with_redundant.push(q_spec); // subsumed by q_gen
        let just_general = UnionQuery::singleton(q_gen);
        assert!(union_equivalent(&with_redundant, &just_general));
    }

    #[test]
    fn folding_redundant_atom() {
        // q(X) :- t(X,p,Y), t(X,p,Z) is equivalent to q(X) :- t(X,p,Y).
        let q_red = ConjunctiveQuery::new(
            vec![v(0)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(0), Id(1), Var(2)),
            ],
        );
        let q_min = ConjunctiveQuery::new(vec![v(0)], vec![Atom::new(Var(0), Id(1), Var(1))]);
        assert!(equivalent(&q_red, &q_min));
    }
}
