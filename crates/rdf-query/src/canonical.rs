//! Canonical forms of conjunctive queries up to variable renaming.
//!
//! Two places in the paper need a renaming-invariant identity for queries:
//!
//! * **View Fusion** (Definition 3.5) fuses views whose "graphs are
//!   isomorphic (their bodies are equivalent up to variable renaming)";
//! * **state deduplication** — "two states are equivalent if they have the
//!   same view sets" — which the search uses to recognize states reached by
//!   multiple paths (Section 6.3 measures exactly these duplicates).
//!
//! The canonical form is the lexicographically smallest token sequence over
//! all atom orders and dense variable numberings. The search is greedy on
//! atom blocks (choosing a non-minimal next atom can only produce a larger
//! sequence, since all completions have equal length) and branches only on
//! exact ties, so it is exponential only in the number of mutually
//! indistinguishable atoms — rare and small for the ≤ ~10-atom views the
//! paper's workloads produce.

use rdf_model::{FxHashMap, Id};

use crate::query::{Atom, ConjunctiveQuery, QTerm, Var};

/// A token of the canonical encoding. `Const` sorts before `Var` by variant
/// order, which fixes the total order the minimization uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CTok {
    /// A constant id.
    Const(Id),
    /// A canonically numbered variable.
    Var(u32),
    /// Separator between body and head sections.
    HeadMark,
}

/// How the head participates in the canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadMode {
    /// Body only — the View Fusion isomorphism test.
    Ignore,
    /// Head appended in declared order — full query identity.
    Ordered,
    /// Head appended as a sorted multiset — view identity up to column
    /// order, used for state signatures.
    Sorted,
}

/// The canonical form: a token key plus the variable numbering achieving it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    /// The minimal token sequence. Equal keys ⟺ isomorphic queries (under
    /// the chosen [`HeadMode`]).
    pub key: Vec<CTok>,
    /// Maps each original variable to its canonical number.
    pub var_map: FxHashMap<Var, u32>,
}

impl CanonicalForm {
    /// Inverse of `var_map`: canonical number → original variable.
    pub fn number_to_var(&self) -> Vec<Var> {
        let mut inv = vec![Var(u32::MAX); self.var_map.len()];
        for (&v, &n) in &self.var_map {
            inv[n as usize] = v;
        }
        inv
    }
}

/// Computes the canonical form of `q` under the given head mode.
pub fn canonical_form(q: &ConjunctiveQuery, mode: HeadMode) -> CanonicalForm {
    let mut search = Search {
        q,
        mode,
        best: None,
    };
    let mut state = PartialState {
        placed: vec![false; q.atoms.len()],
        mapping: FxHashMap::default(),
        next_num: 0,
        tokens: Vec::with_capacity(q.atoms.len() * 3 + q.head.len() + 1),
    };
    search.rec(&mut state, q.atoms.len());
    // xlint: allow(X001, reason = "rec() visits at least one complete placement, so best is always set")
    let (key, var_map) = search.best.expect("canonical search always finds a leaf");
    CanonicalForm { key, var_map }
}

struct Search<'a> {
    q: &'a ConjunctiveQuery,
    mode: HeadMode,
    best: Option<(Vec<CTok>, FxHashMap<Var, u32>)>,
}

struct PartialState {
    placed: Vec<bool>,
    mapping: FxHashMap<Var, u32>,
    next_num: u32,
    tokens: Vec<CTok>,
}

impl Search<'_> {
    fn rec(&mut self, st: &mut PartialState, remaining: usize) {
        if remaining == 0 {
            self.finish(st);
            return;
        }
        // Encode each unplaced atom under the current mapping, numbering its
        // unseen variables on the fly.
        let mut min_enc: Option<[CTok; 3]> = None;
        let mut ties: Vec<(usize, [CTok; 3])> = Vec::new();
        for (i, placed) in st.placed.iter().enumerate() {
            if *placed {
                continue;
            }
            let enc = encode_atom(&self.q.atoms[i], &st.mapping, st.next_num);
            match &min_enc {
                None => {
                    min_enc = Some(enc);
                    ties.push((i, enc));
                }
                Some(cur) => match enc.cmp(cur) {
                    std::cmp::Ordering::Less => {
                        min_enc = Some(enc);
                        ties.clear();
                        ties.push((i, enc));
                    }
                    std::cmp::Ordering::Equal => ties.push((i, enc)),
                    std::cmp::Ordering::Greater => {}
                },
            }
        }
        for (i, enc) in ties {
            st.placed[i] = true;
            let token_mark = st.tokens.len();
            st.tokens.extend_from_slice(&enc);
            // Commit the new variable numbers this atom introduces.
            let mut added: Vec<Var> = Vec::new();
            let saved_next = st.next_num;
            for term in self.q.atoms[i].terms() {
                if let QTerm::Var(v) = term {
                    if !st.mapping.contains_key(v) {
                        st.mapping.insert(*v, st.next_num);
                        st.next_num += 1;
                        added.push(*v);
                    }
                }
            }
            self.rec(st, remaining - 1);
            for v in added {
                st.mapping.remove(&v);
            }
            st.next_num = saved_next;
            st.tokens.truncate(token_mark);
            st.placed[i] = false;
        }
    }

    fn finish(&mut self, st: &mut PartialState) {
        let mut key = st.tokens.clone();
        let mut mapping = st.mapping.clone();
        if self.mode != HeadMode::Ignore {
            key.push(CTok::HeadMark);
            let mut next = st.next_num;
            let mut head_toks: Vec<CTok> = Vec::with_capacity(self.q.head.len());
            for t in &self.q.head {
                head_toks.push(match t {
                    QTerm::Const(c) => CTok::Const(*c),
                    QTerm::Var(v) => {
                        // Head vars missing from the body (unsafe queries)
                        // are numbered after all body vars.
                        let n = *mapping.entry(*v).or_insert_with(|| {
                            let n = next;
                            next += 1;
                            n
                        });
                        CTok::Var(n)
                    }
                });
            }
            if self.mode == HeadMode::Sorted {
                head_toks.sort_unstable();
            }
            key.extend_from_slice(&head_toks);
        }
        match &self.best {
            Some((best_key, _)) if *best_key <= key => {}
            _ => self.best = Some((key, mapping)),
        }
    }
}

fn encode_atom(atom: &Atom, mapping: &FxHashMap<Var, u32>, next_num: u32) -> [CTok; 3] {
    let mut next = next_num;
    let mut local: FxHashMap<Var, u32> = FxHashMap::default();
    let mut out = [CTok::HeadMark; 3];
    for (k, term) in atom.terms().iter().enumerate() {
        out[k] = match term {
            QTerm::Const(c) => CTok::Const(*c),
            QTerm::Var(v) => {
                let n = mapping.get(v).copied().or_else(|| local.get(v).copied());
                let n = n.unwrap_or_else(|| {
                    let n = next;
                    next += 1;
                    local.insert(*v, n);
                    n
                });
                CTok::Var(n)
            }
        };
    }
    out
}

/// Finds a variable renaming sending `b`'s body onto `a`'s body (a
/// bijection making the bodies syntactically identical), or `None` if the
/// bodies are not isomorphic.
///
/// The returned map renames `b`'s variables to `a`'s — the `⟨2→1⟩` renaming
/// of the paper's View Fusion definition.
pub fn body_isomorphism(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> Option<FxHashMap<Var, Var>> {
    if a.atoms.len() != b.atoms.len() {
        return None;
    }
    let ca = canonical_form(a, HeadMode::Ignore);
    let cb = canonical_form(b, HeadMode::Ignore);
    if ca.key != cb.key {
        return None;
    }
    let num_to_a = ca.number_to_var();
    let mut map = FxHashMap::default();
    for (v_b, n) in cb.var_map {
        map.insert(v_b, num_to_a[n as usize]);
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> QTerm {
        QTerm::Var(Var(i))
    }

    #[test]
    fn renaming_invariance() {
        let q1 = ConjunctiveQuery::new(
            vec![v(0)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(1), Id(2), Var(2)),
            ],
        );
        let q2 = ConjunctiveQuery::new(
            vec![v(7)],
            vec![
                Atom::new(Var(9), Id(2), Var(4)),
                Atom::new(Var(7), Id(1), Var(9)),
            ],
        );
        assert_eq!(
            canonical_form(&q1, HeadMode::Ordered).key,
            canonical_form(&q2, HeadMode::Ordered).key
        );
    }

    #[test]
    fn head_distinguishes_queries() {
        let body = vec![Atom::new(Var(0), Id(1), Var(1))];
        let qx = ConjunctiveQuery::new(vec![v(0)], body.clone());
        let qy = ConjunctiveQuery::new(vec![v(1)], body.clone());
        assert_eq!(
            canonical_form(&qx, HeadMode::Ignore).key,
            canonical_form(&qy, HeadMode::Ignore).key
        );
        assert_ne!(
            canonical_form(&qx, HeadMode::Ordered).key,
            canonical_form(&qy, HeadMode::Ordered).key
        );
    }

    #[test]
    fn sorted_head_ignores_column_order() {
        let body = vec![Atom::new(Var(0), Id(1), Var(1))];
        let qxy = ConjunctiveQuery::new(vec![v(0), v(1)], body.clone());
        let qyx = ConjunctiveQuery::new(vec![v(1), v(0)], body.clone());
        assert_ne!(
            canonical_form(&qxy, HeadMode::Ordered).key,
            canonical_form(&qyx, HeadMode::Ordered).key
        );
        assert_eq!(
            canonical_form(&qxy, HeadMode::Sorted).key,
            canonical_form(&qyx, HeadMode::Sorted).key
        );
    }

    #[test]
    fn different_structure_different_key() {
        let chain = ConjunctiveQuery::new(
            vec![],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(1), Id(1), Var(2)),
            ],
        );
        let star = ConjunctiveQuery::new(
            vec![],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(0), Id(1), Var(2)),
            ],
        );
        assert_ne!(
            canonical_form(&chain, HeadMode::Ignore).key,
            canonical_form(&star, HeadMode::Ignore).key
        );
    }

    #[test]
    fn isomorphism_mapping_is_exact() {
        let a = ConjunctiveQuery::new(
            vec![v(0)],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(1), Id(2), Id(5)),
            ],
        );
        let b = ConjunctiveQuery::new(
            vec![v(3)],
            vec![
                Atom::new(Var(8), Id(2), Id(5)),
                Atom::new(Var(3), Id(1), Var(8)),
            ],
        );
        let map = body_isomorphism(&a, &b).expect("isomorphic");
        // Applying the renaming to b's atoms must reproduce a's atoms as a set.
        let qmap: FxHashMap<Var, QTerm> = map
            .iter()
            .map(|(&from, &to)| (from, QTerm::Var(to)))
            .collect();
        let mut renamed: Vec<Atom> = b.atoms.iter().map(|at| at.substitute(&qmap)).collect();
        renamed.sort_by_key(|a| format!("{a:?}"));
        let mut orig = a.atoms.clone();
        orig.sort_by_key(|a| format!("{a:?}"));
        assert_eq!(renamed, orig);
    }

    #[test]
    fn non_isomorphic_rejected() {
        let a = ConjunctiveQuery::new(vec![], vec![Atom::new(Var(0), Id(1), Var(1))]);
        let b = ConjunctiveQuery::new(vec![], vec![Atom::new(Var(0), Id(2), Var(1))]);
        assert!(body_isomorphism(&a, &b).is_none());
        let c = ConjunctiveQuery::new(
            vec![],
            vec![
                Atom::new(Var(0), Id(1), Var(1)),
                Atom::new(Var(0), Id(1), Var(1)),
            ],
        );
        assert!(body_isomorphism(&a, &c).is_none());
    }

    #[test]
    fn symmetric_queries_terminate() {
        // A clique of same-property atoms: many ties, still exact & fast.
        let mut atoms = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    atoms.push(Atom::new(Var(i), Id(1), Var(j)));
                }
            }
        }
        let q = ConjunctiveQuery::new(vec![], atoms);
        let c1 = canonical_form(&q, HeadMode::Ignore);
        // A relabeled version must agree.
        let mut map = FxHashMap::default();
        for i in 0..4u32 {
            map.insert(Var(i), QTerm::Var(Var(10 + (7 * i) % 4)));
        }
        let q2 = q.substitute(&map);
        let c2 = canonical_form(&q2, HeadMode::Ignore);
        assert_eq!(c1.key, c2.key);
    }

    #[test]
    fn intra_atom_repetition_encoded() {
        let loops = ConjunctiveQuery::new(vec![], vec![Atom::new(Var(0), Id(1), Var(0))]);
        let plain = ConjunctiveQuery::new(vec![], vec![Atom::new(Var(0), Id(1), Var(1))]);
        assert_ne!(
            canonical_form(&loops, HeadMode::Ignore).key,
            canonical_form(&plain, HeadMode::Ignore).key
        );
    }
}
