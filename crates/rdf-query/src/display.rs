//! Pretty-printing of queries against a dictionary.

use rdf_model::{Dictionary, Term};

use crate::query::{Atom, ConjunctiveQuery, QTerm};
use crate::ucq::UnionQuery;

/// Renders a term; variables as `X<n>`, constants decoded through `dict`.
pub fn term_to_string(t: &QTerm, dict: &Dictionary) -> String {
    match t {
        QTerm::Var(v) => format!("{v}"),
        QTerm::Const(c) => match dict.get(*c) {
            Some(Term::Uri(u)) => format!("<{u}>"),
            Some(Term::Blank(b)) => format!("_:{b}"),
            Some(Term::Literal(l)) => format!("\"{l}\""),
            None => format!("#{}", c.0),
        },
    }
}

/// Renders one atom.
pub fn atom_to_string(a: &Atom, dict: &Dictionary) -> String {
    let [s, p, o] = a.terms();
    format!(
        "t({}, {}, {})",
        term_to_string(s, dict),
        term_to_string(p, dict),
        term_to_string(o, dict)
    )
}

/// Renders a query in the parser's syntax.
pub fn query_to_string(name: &str, q: &ConjunctiveQuery, dict: &Dictionary) -> String {
    let head: Vec<String> = q.head.iter().map(|t| term_to_string(t, dict)).collect();
    let body: Vec<String> = q.atoms.iter().map(|a| atom_to_string(a, dict)).collect();
    format!("{name}({}) :- {}", head.join(", "), body.join(", "))
}

/// Renders a union of conjunctive queries, one branch per line.
pub fn ucq_to_string(name: &str, u: &UnionQuery, dict: &Dictionary) -> String {
    u.branches()
        .iter()
        .map(|cq| query_to_string(name, cq, dict))
        .collect::<Vec<_>>()
        .join("\n∪ ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn roundtrip_through_parser() {
        let mut dict = Dictionary::new();
        let text = "q(X0, X2) :- t(X0, <hasPainted>, <starryNight>), t(X0, <isParentOf>, X1), t(X1, <hasPainted>, X2)";
        let p = parse_query(text, &mut dict).unwrap();
        let printed = query_to_string("q", &p.query, &dict);
        let p2 = parse_query(&printed, &mut dict).unwrap();
        assert_eq!(p.query, p2.query);
    }

    #[test]
    fn literal_and_blank_rendering() {
        let mut dict = Dictionary::new();
        let p = parse_query("q(X) :- t(X, <p>, \"v\"), t(X, <p>, _:b)", &mut dict).unwrap();
        let s = query_to_string("q", &p.query, &dict);
        assert!(s.contains("\"v\""));
        assert!(s.contains("_:b"));
    }
}
