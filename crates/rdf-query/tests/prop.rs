//! Property tests for containment, minimization and canonicalization.

use proptest::prelude::*;
use rdf_model::{FxHashMap, Id};
use rdf_query::canonical::{body_isomorphism, canonical_form, HeadMode};
use rdf_query::containment::{equivalent, is_contained_in};
use rdf_query::minimize::{is_minimal, minimize};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, Var};

/// A random small query over 4 variables, 3 properties, 3 constants.
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let term = prop_oneof![
        (0u32..4).prop_map(|v| QTerm::Var(Var(v))),
        (100u32..103).prop_map(|c| QTerm::Const(Id(c))),
    ];
    let prop_term = prop_oneof![
        3 => (200u32..203).prop_map(|c| QTerm::Const(Id(c))),
        1 => (4u32..6).prop_map(|v| QTerm::Var(Var(v))),
    ];
    (
        prop::collection::vec((term.clone(), prop_term, term), 1..4),
        prop::collection::vec(0u32..4, 0..3),
    )
        .prop_map(|(atoms, head)| {
            let atoms: Vec<Atom> = atoms.into_iter().map(|(s, p, o)| Atom([s, p, o])).collect();
            // Head vars restricted to body vars for safety.
            let body_vars: Vec<Var> = {
                let mut out = Vec::new();
                for a in &atoms {
                    for v in a.vars() {
                        if !out.contains(&v) {
                            out.push(v);
                        }
                    }
                }
                out
            };
            let head: Vec<QTerm> = head
                .into_iter()
                .filter_map(|i| body_vars.get(i as usize % body_vars.len().max(1)).copied())
                .map(QTerm::Var)
                .collect();
            ConjunctiveQuery::new(head, atoms)
        })
}

/// A random variable renaming (bijection over a window of variables).
fn renaming_strategy() -> impl Strategy<Value = FxHashMap<Var, QTerm>> {
    Just(()).prop_perturb(|_, mut rng| {
        let mut targets: Vec<u32> = (10..20).collect();
        // Fisher–Yates with the proptest rng.
        for i in (1..targets.len()).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            targets.swap(i, j);
        }
        (0u32..8)
            .map(|v| (Var(v), QTerm::Var(Var(targets[v as usize]))))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn containment_is_reflexive(q in query_strategy()) {
        prop_assert!(is_contained_in(&q, &q));
        prop_assert!(equivalent(&q, &q));
    }

    #[test]
    fn renaming_preserves_equivalence_and_canon(
        q in query_strategy(),
        renaming in renaming_strategy(),
    ) {
        let renamed = q.substitute(&renaming);
        prop_assert!(equivalent(&q, &renamed));
        prop_assert_eq!(
            canonical_form(&q, HeadMode::Ordered).key,
            canonical_form(&renamed, HeadMode::Ordered).key
        );
        // Body isomorphism must find the mapping.
        prop_assert!(body_isomorphism(&q, &renamed).is_some());
    }

    #[test]
    fn minimize_is_sound_and_idempotent(q in query_strategy()) {
        let m = minimize(&q);
        prop_assert!(equivalent(&q, &m), "minimization must preserve semantics");
        prop_assert!(m.atoms.len() <= q.atoms.len());
        prop_assert!(is_minimal(&m));
        prop_assert_eq!(minimize(&m).atoms.len(), m.atoms.len());
    }

    #[test]
    fn canonical_equal_implies_isomorphic_semantics(
        a in query_strategy(),
        b in query_strategy(),
    ) {
        let ka = canonical_form(&a, HeadMode::Ordered).key;
        let kb = canonical_form(&b, HeadMode::Ordered).key;
        if ka == kb {
            // Equal canonical keys must mean semantically equivalent
            // queries (isomorphism is stronger than equivalence).
            prop_assert!(equivalent(&a, &b));
        }
    }

    #[test]
    fn dropping_an_atom_loses_no_answers(q in query_strategy()) {
        // q with an extra atom is contained in q without it (projection of
        // a superset of constraints).
        if q.atoms.len() >= 2 {
            let mut fewer = q.clone();
            fewer.atoms.pop();
            if fewer.is_safe() {
                prop_assert!(is_contained_in(&q, &fewer));
            }
        }
    }

    #[test]
    fn normalized_preserves_canonical_key(q in query_strategy()) {
        prop_assert_eq!(
            canonical_form(&q, HeadMode::Ordered).key,
            canonical_form(&q.normalized(), HeadMode::Ordered).key
        );
    }
}
